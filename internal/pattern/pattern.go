// Package pattern implements Pequod's key patterns and slot machinery
// (§3.1 of the paper): the building blocks of cache joins.
//
// A pattern like t|<user>|<time>|<poster> describes a family of keys. Its
// components are either literals ("t", or interleaving tags like "a" in
// page|<author>|<id>|a) or slots (<user>), named variables bound by
// matching keys. A slot set — here Binding — is a set of slot
// assignments; a containing range is "effectively the inverse of a slot
// set": given a slot set, a source pattern, and the requested output key
// range, the minimal range of source keys that might affect the scan's
// results.
//
// Slot definitions: a slot may declare a fixed byte width, written
// <time:8>. Fixed-width slots are validated on match and guarantee the
// prefix-freedom that makes bound transfer between output and source
// ranges exact ("Slot definitions tell Pequod how to unpack a key into
// its component slots — for example, by looking for vertical bars, or by
// taking fixed numbers of bytes", §3). Variable-width slots assume the
// application never uses two values where one is a proper prefix of the
// other in the same slot; the execution engine additionally clips every
// emitted output to the requested range, so a violated assumption can
// cost minimality, never correctness of returned data.
package pattern

import (
	"fmt"
	"strconv"
	"strings"

	"pequod/internal/keys"
)

// MaxSlots bounds the number of distinct slots in one cache join. Eight is
// generous: the paper's most complex join (Newp page karma) uses four.
const MaxSlots = 8

// SlotTable assigns slot indices join-wide, by first appearance across the
// output and source patterns, and records per-slot fixed widths (0 =
// variable width).
type SlotTable struct {
	Names  []string
	Widths []int
}

// Index returns the slot index for name, creating it if needed.
func (st *SlotTable) Index(name string, width int) (int, error) {
	for i, n := range st.Names {
		if n == name {
			if width != 0 && st.Widths[i] != 0 && st.Widths[i] != width {
				return 0, fmt.Errorf("slot <%s> declared with widths %d and %d", name, st.Widths[i], width)
			}
			if width != 0 {
				st.Widths[i] = width
			}
			return i, nil
		}
	}
	if len(st.Names) >= MaxSlots {
		return 0, fmt.Errorf("too many slots (max %d)", MaxSlots)
	}
	st.Names = append(st.Names, name)
	st.Widths = append(st.Widths, width)
	return len(st.Names) - 1, nil
}

// Lookup returns the index of an existing slot, or -1.
func (st *SlotTable) Lookup(name string) int {
	for i, n := range st.Names {
		if n == name {
			return i
		}
	}
	return -1
}

// Seg is one '|'-separated component of a pattern: a literal (Slot < 0) or
// a slot reference.
type Seg struct {
	Literal string
	Slot    int
}

// Pattern is a compiled key pattern.
type Pattern struct {
	raw    string
	table  string
	segs   []Seg
	slotof uint16 // bitmask of slots referenced
	widths []int  // shared with the join's SlotTable
}

// Parse compiles a textual pattern such as "t|<user>|<time:8>|<poster>".
// The first component must be a literal (the table name). Slot indices are
// assigned through st so that patterns within one join share slots.
func Parse(raw string, st *SlotTable) (*Pattern, error) {
	if raw == "" {
		return nil, fmt.Errorf("empty pattern")
	}
	comps := strings.Split(raw, keys.SepString)
	p := &Pattern{raw: raw}
	for i, c := range comps {
		if strings.HasPrefix(c, "<") {
			if !strings.HasSuffix(c, ">") {
				return nil, fmt.Errorf("pattern %q: malformed slot %q", raw, c)
			}
			body := c[1 : len(c)-1]
			name := body
			width := 0
			if j := strings.IndexByte(body, ':'); j >= 0 {
				name = body[:j]
				w, err := strconv.Atoi(body[j+1:])
				if err != nil || w <= 0 {
					return nil, fmt.Errorf("pattern %q: bad slot width in %q", raw, c)
				}
				width = w
			}
			if name == "" {
				return nil, fmt.Errorf("pattern %q: empty slot name", raw)
			}
			if i == 0 {
				return nil, fmt.Errorf("pattern %q: first component must be a literal table name", raw)
			}
			idx, err := st.Index(name, width)
			if err != nil {
				return nil, fmt.Errorf("pattern %q: %v", raw, err)
			}
			if p.slotof&(1<<idx) != 0 {
				return nil, fmt.Errorf("pattern %q: slot <%s> repeated", raw, name)
			}
			p.slotof |= 1 << idx
			p.segs = append(p.segs, Seg{Slot: idx})
		} else {
			if strings.ContainsAny(c, "<>") {
				return nil, fmt.Errorf("pattern %q: stray angle bracket in %q", raw, c)
			}
			if i == 0 {
				if c == "" {
					return nil, fmt.Errorf("pattern %q: empty table name", raw)
				}
				p.table = c
			}
			p.segs = append(p.segs, Seg{Literal: c, Slot: -1})
		}
	}
	p.widths = st.Widths
	return p, nil
}

// String returns the original pattern text.
func (p *Pattern) String() string { return p.raw }

// Table returns the pattern's table (first literal component).
func (p *Pattern) Table() string { return p.table }

// Segs exposes the compiled segments.
func (p *Pattern) Segs() []Seg { return p.segs }

// Slots returns the bitmask of slots referenced by the pattern.
func (p *Pattern) Slots() uint16 { return p.slotof }

// TableRange returns the key range spanned by the pattern's table.
func (p *Pattern) TableRange() keys.Range {
	return keys.Range{Lo: p.table + keys.SepString, Hi: keys.PrefixEnd(p.table + keys.SepString)}
}

// Binding is a slot set: an immutable-by-convention set of slot
// assignments. It has value semantics; With returns an extended copy, so
// the nested-loop executor can branch without copying explicitly.
type Binding struct {
	vals [MaxSlots]string
	mask uint16
}

// Get returns the value bound to slot i.
func (b Binding) Get(i int) (string, bool) {
	if b.mask&(1<<i) == 0 {
		return "", false
	}
	return b.vals[i], true
}

// Has reports whether slot i is bound.
func (b Binding) Has(i int) bool { return b.mask&(1<<i) != 0 }

// With returns a copy of b with slot i bound to v.
func (b Binding) With(i int, v string) Binding {
	b.vals[i] = v
	b.mask |= 1 << i
	return b
}

// Mask returns the bitmask of bound slots.
func (b Binding) Mask() uint16 { return b.mask }

// Covers reports whether b binds every slot in mask.
func (b Binding) Covers(mask uint16) bool { return b.mask&mask == mask }

// String renders the binding for debugging, given the join's slot names.
func (b Binding) String(st *SlotTable) string {
	var sb strings.Builder
	sb.WriteByte('{')
	first := true
	for i, n := range st.Names {
		if v, ok := b.Get(i); ok {
			if !first {
				sb.WriteString(", ")
			}
			first = false
			fmt.Fprintf(&sb, "%s=%q", n, v)
		}
	}
	sb.WriteByte('}')
	return sb.String()
}

// Match tests key against the pattern under binding b. On success it
// returns b extended with the slots bound by key. Literals must match
// exactly; slots already bound in b must agree; fixed-width slots must
// have exactly their declared width.
func (p *Pattern) Match(key string, b Binding) (Binding, bool) {
	rest := key
	for i, seg := range p.segs {
		var comp string
		if i == len(p.segs)-1 {
			// Final segment consumes the remainder; a separator in it
			// means the key has too many components.
			if strings.IndexByte(rest, keys.Sep) >= 0 {
				return b, false
			}
			comp = rest
			rest = ""
		} else {
			j := strings.IndexByte(rest, keys.Sep)
			if j < 0 {
				return b, false
			}
			comp = rest[:j]
			rest = rest[j+1:]
		}
		if seg.Slot < 0 {
			if comp != seg.Literal {
				return b, false
			}
			continue
		}
		if w := p.widths[seg.Slot]; w != 0 && len(comp) != w {
			return b, false
		}
		if v, ok := b.Get(seg.Slot); ok {
			if v != comp {
				return b, false
			}
		} else {
			b = b.With(seg.Slot, comp)
		}
	}
	return b, true
}

// BuildKey constructs the concrete key for b; ok is false if any slot in
// the pattern is unbound.
func (p *Pattern) BuildKey(b Binding) (string, bool) {
	if !b.Covers(p.slotof) {
		return "", false
	}
	var sb strings.Builder
	for i, seg := range p.segs {
		if i > 0 {
			sb.WriteByte(keys.Sep)
		}
		if seg.Slot < 0 {
			sb.WriteString(seg.Literal)
		} else {
			v, _ := b.Get(seg.Slot)
			sb.WriteString(v)
		}
	}
	return sb.String(), true
}

// BuildPrefix builds the longest key prefix determined by b: literals and
// bound slots up to the first unbound slot. It returns the prefix (with a
// trailing separator unless the pattern completed) and the index of the
// first unbuilt segment (len(segs) when the whole key was built, in which
// case the prefix is the complete key with no trailing separator).
func (p *Pattern) BuildPrefix(b Binding) (string, int) {
	var sb strings.Builder
	for i, seg := range p.segs {
		var v string
		if seg.Slot < 0 {
			v = seg.Literal
		} else {
			var ok bool
			v, ok = b.Get(seg.Slot)
			if !ok {
				return sb.String(), i
			}
		}
		sb.WriteString(v)
		if i < len(p.segs)-1 {
			sb.WriteByte(keys.Sep)
		}
	}
	return sb.String(), len(p.segs)
}

// PointRange returns the smallest range containing exactly key.
func PointRange(key string) keys.Range {
	return keys.Range{Lo: key, Hi: key + "\x00"}
}

// ScanBinding derives a slot set from a requested scan range over the
// output pattern (Fig 3's "ss := join.slotset(t, first, last)"): every
// output slot whose value is completely pinned by the range is bound.
// The second return value is the portion of the scan range that can
// possibly contain keys matching the pattern.
func (p *Pattern) ScanBinding(scan keys.Range) (Binding, keys.Range) {
	var b Binding
	clip := scan.Intersect(p.TableRange())
	if clip.Empty() {
		return b, clip
	}
	pfx := ""
	for i, seg := range p.segs {
		// The scan must lie entirely inside the keyspace of a single
		// component value c at this position for the binding to be exact.
		if !strings.HasPrefix(clip.Lo, pfx) {
			break
		}
		rest := clip.Lo[len(pfx):]
		j := strings.IndexByte(rest, keys.Sep)
		if j < 0 {
			break // component incomplete in the lower bound
		}
		c := rest[:j]
		next := pfx + c + keys.SepString
		cr := keys.Range{Lo: next, Hi: keys.PrefixEnd(next)}
		if !cr.ContainsRange(clip) {
			break
		}
		if seg.Slot < 0 {
			if c != seg.Literal {
				// Scan pinned to a different literal: nothing matches.
				return b, keys.Range{Lo: clip.Lo, Hi: clip.Lo}
			}
		} else {
			if w := p.widths[seg.Slot]; w != 0 && len(c) != w {
				return b, keys.Range{Lo: clip.Lo, Hi: clip.Lo}
			}
			b = b.With(seg.Slot, c)
		}
		pfx = next
		if i == len(p.segs)-1 {
			break
		}
	}
	return b, clip
}

// truncComps cuts s after at most n '|'-separated components, without a
// trailing separator.
func truncComps(s string, n int) string {
	idx := 0
	for i := 0; i < n; i++ {
		j := strings.IndexByte(s[idx:], keys.Sep)
		if j < 0 {
			return s
		}
		if i == n-1 {
			return s[:idx+j]
		}
		idx += j + 1
	}
	return s
}

// countComps counts '|'-separated components of s (empty string = 0).
func countComps(s string) int {
	if s == "" {
		return 0
	}
	return strings.Count(s, keys.SepString) + 1
}

// ContainingRange computes the minimal range of src keys that can affect a
// scan of the out pattern over the given range, under slot set b (§3.1).
// It is always *containing* (over-approximate at worst): every source key
// that could contribute an output key inside scan lies inside the result.
func ContainingRange(src, out *Pattern, b Binding, scan keys.Range) keys.Range {
	srcPfx, next := src.BuildPrefix(b)
	if next == len(src.segs) {
		return PointRange(srcPfx)
	}
	wide := keys.Range{Lo: srcPfx, Hi: keys.PrefixEnd(srcPfx)}

	// Bound transfer: where the source's unbuilt tail mirrors the
	// output's unbuilt tail (same slots in the same order), raw
	// scan-bound remainders carry over component by component — this is
	// what turns scan [t|ann|100, t|ann|200) into post range
	// [p|bob|100, p|bob|200). m is the aligned prefix length; transfer
	// is limited to m components. When the source pattern continues past
	// the aligned region (k > m), upper bounds get the conservative
	// separator-successor terminator so continuing source keys at the
	// boundary stay included.
	outPfx, outNext := out.BuildPrefix(b)
	if outNext >= len(out.segs) {
		return wide
	}
	srcTail := src.segs[next:]
	outTail := out.segs[outNext:]
	m := 0
	for m < len(srcTail) && m < len(outTail) {
		s, o := srcTail[m], outTail[m]
		if s.Slot != o.Slot || (s.Slot < 0 && s.Literal != o.Literal) {
			break
		}
		m++
	}
	if m == 0 {
		return wide
	}
	full := m == len(srcTail) // source keys end where alignment ends

	lo := srcPfx
	switch {
	case scan.Lo <= outPfx:
		// no extra lower constraint
	case scan.Lo < keys.PrefixEnd(outPfx):
		rem := scan.Lo[len(outPfx):]
		if countComps(rem) > m {
			rem = truncComps(rem, m)
		}
		lo = srcPfx + rem
	default:
		return keys.Range{Lo: srcPfx, Hi: srcPfx} // scan entirely above this binding
	}

	hi := wide.Hi
	pe := keys.PrefixEnd(outPfx)
	switch {
	case scan.Hi == "" || (pe != "" && scan.Hi >= pe):
		// no extra upper constraint
	case scan.Hi > outPfx:
		rem := scan.Hi[len(outPfx):]
		// sealed: rem was cut at a component boundary (or came from a
		// point range's \x00 terminator), so its final component is a
		// complete value rather than a raw prefix of the bound.
		sealed := false
		if strings.HasSuffix(rem, "\x00") {
			rem = rem[:len(rem)-1]
			sealed = true
		}
		if countComps(rem) > m {
			rem = truncComps(rem, m)
			sealed = true
		}
		switch {
		case full && !sealed:
			// Source keys end inside the aligned region and the raw bound
			// lies there too: exact transfer.
			hi = srcPfx + rem
		case full:
			// Source keys end at the seal boundary; \x00 keeps the
			// boundary key itself inside.
			hi = srcPfx + rem + "\x00"
		case !sealed && len(outTail) > m:
			// Both source and output keys continue with '|'-separated
			// components past rem's extent: exact transfer.
			hi = srcPfx + rem
		default:
			// Source keys continue past the boundary with '|'-separated
			// components; Sep+1 keeps all their continuations inside.
			hi = srcPfx + rem + string(keys.Sep+1)
		}
	default:
		return keys.Range{Lo: srcPfx, Hi: srcPfx} // scan entirely below this binding
	}
	return keys.Range{Lo: lo, Hi: hi}
}
