package twip

import (
	"fmt"
	"strconv"
	"strings"

	"pequod/internal/baselines/sqlsim"
	"pequod/internal/client"
	"pequod/internal/keys"
	"pequod/internal/partition"
	"pequod/internal/rpc"
)

// Backend abstracts the systems under comparison in Figure 7 (§5.2): the
// identical Twip workload drives each implementation through this
// interface. Implementations must be safe for concurrent use by the
// runner's workers.
type Backend interface {
	Name() string
	// Subscribe makes user follow poster (with timeline backfill where
	// the system requires client-side maintenance).
	Subscribe(user, poster int32) error
	// Post publishes a tweet at logical time ts.
	Post(poster int32, ts int64, text string) error
	// Check reads user's timeline entries with time >= since, returning
	// the entry count. login distinguishes §5.1's initial scans.
	Check(user int32, since int64, login bool) (int, error)
}

// shard routes user-owned keys to one of n servers (the Twip S(u)
// affinity function, §2.4).
func shard(owner int32, n int) int {
	return partition.UserShard(UserID(owner), n)
}

// --- Pequod (server-side cache joins) ---

// PequodBackend drives real Pequod servers: timelines are produced by the
// timeline cache join; the client writes base data and scans timelines.
type PequodBackend struct {
	Clients []*client.Client // one per server, timelines partitioned by user
}

// Name implements Backend.
func (b *PequodBackend) Name() string { return "Pequod" }

// Subscribe writes the subscription row; the cache join does the rest.
func (b *PequodBackend) Subscribe(user, poster int32) error {
	c := b.Clients[shard(user, len(b.Clients))]
	return c.Put(keys.Join("s", UserID(user), UserID(poster)), "1")
}

// Post writes the post. Timelines are partitioned by user across
// servers, so each server needs the post visible for its local joins: the
// put is broadcast ("a popular user's tweets are copied to all servers",
// §2.4 — with look-aside clients the copy happens at write time).
func (b *PequodBackend) Post(poster int32, ts int64, text string) error {
	key := keys.Join("p", UserID(poster), TimeID(ts))
	futs := make([]*client.Future, len(b.Clients))
	for i, c := range b.Clients {
		futs[i] = c.PutAsync(key, text)
	}
	for _, f := range futs {
		if _, err := f.Wait(); err != nil {
			return err
		}
	}
	return nil
}

// Check scans the timeline range [t|u|since, t|u|+).
func (b *PequodBackend) Check(user int32, since int64, login bool) (int, error) {
	c := b.Clients[shard(user, len(b.Clients))]
	u := UserID(user)
	lo := keys.Join("t", u, TimeID(since))
	kvs, err := c.Scan(lo, keys.RangeEnd("t", u), 0)
	return len(kvs), err
}

// --- Client Pequod (no joins; clients maintain timelines) ---

// ClientPequodBackend uses the same Pequod servers with no cache joins
// installed: "After making a post, the posting client sends a timeline
// update for every subscribed user" (§5.2). It isolates the performance
// impact of server-managed computation.
type ClientPequodBackend struct {
	Clients []*client.Client
}

// Name implements Backend.
func (b *ClientPequodBackend) Name() string { return "Client Pequod" }

// Subscribe records the edge plus a reverse index, then backfills the
// user's timeline from the poster's history — all client work.
func (b *ClientPequodBackend) Subscribe(user, poster int32) error {
	n := len(b.Clients)
	u, p := UserID(user), UserID(poster)
	uc := b.Clients[shard(user, n)]
	pc := b.Clients[shard(poster, n)]
	f1 := uc.PutAsync(keys.Join("s", u, p), "1")
	f2 := pc.PutAsync(keys.Join("rs", p, u), "1")
	posts, err := pc.Scan(keys.Join("p", p)+"|", keys.RangeEnd("p", p), 0)
	if err != nil {
		return err
	}
	futs := make([]*client.Future, 0, len(posts))
	for _, kv := range posts {
		ts := keys.Split(kv.Key)[2]
		futs = append(futs, uc.PutAsync(keys.Join("t", u, ts, p), kv.Value))
	}
	for _, f := range append(futs, f1, f2) {
		if _, err := f.Wait(); err != nil {
			return err
		}
	}
	return nil
}

// Post writes the post, reads the follower list, and fans the tweet out
// to every follower's timeline — one RPC per follower.
func (b *ClientPequodBackend) Post(poster int32, ts int64, text string) error {
	n := len(b.Clients)
	p := UserID(poster)
	pc := b.Clients[shard(poster, n)]
	if err := pc.Put(keys.Join("p", p, TimeID(ts)), text); err != nil {
		return err
	}
	followers, err := pc.Scan(keys.Join("rs", p)+"|", keys.RangeEnd("rs", p), 0)
	if err != nil {
		return err
	}
	futs := make([]*client.Future, 0, len(followers))
	for _, kv := range followers {
		f := keys.Split(kv.Key)[2]
		fc := b.Clients[partition.UserShard(f, n)]
		futs = append(futs, fc.PutAsync(keys.Join("t", f, TimeID(ts), p), text))
	}
	for _, f := range futs {
		if _, err := f.Wait(); err != nil {
			return err
		}
	}
	return nil
}

// Check scans the client-maintained timeline.
func (b *ClientPequodBackend) Check(user int32, since int64, login bool) (int, error) {
	c := b.Clients[shard(user, len(b.Clients))]
	u := UserID(user)
	kvs, err := c.Scan(keys.Join("t", u, TimeID(since)), keys.RangeEnd("t", u), 0)
	return len(kvs), err
}

// --- Redis-like (sorted-set timelines, client-managed) ---

// RedisBackend drives redisim servers: "Redis stores timelines as sorted
// sets of tweets" with client-side fan-out (§5.2).
type RedisBackend struct {
	Clients []*client.Client
}

// Name implements Backend.
func (b *RedisBackend) Name() string { return "Redis" }

func zmember(poster int32, ts int64, text string) string {
	return TimeID(ts) + "|" + UserID(poster) + "|" + text
}

// Subscribe adds to the follower set and backfills from the poster's
// post zset.
func (b *RedisBackend) Subscribe(user, poster int32) error {
	n := len(b.Clients)
	u, p := UserID(user), UserID(poster)
	pc := b.Clients[shard(poster, n)]
	uc := b.Clients[shard(user, n)]
	if _, err := pc.Command("SADD", "followers:"+p, u); err != nil {
		return err
	}
	m, err := pc.Command("ZRANGEBYSCORE", "posts:"+p, "-inf", "+inf")
	if err != nil {
		return err
	}
	futs := make([]*client.Future, 0, len(m.KVs))
	for _, kv := range m.KVs {
		futs = append(futs, uc.CommandAsync("ZADD", "tl:"+u, kv.Key, kv.Value))
	}
	for _, f := range futs {
		if _, err := f.Wait(); err != nil {
			return err
		}
	}
	return nil
}

// Post appends to the poster's zset and fans out to follower timelines.
func (b *RedisBackend) Post(poster int32, ts int64, text string) error {
	n := len(b.Clients)
	p := UserID(poster)
	pc := b.Clients[shard(poster, n)]
	member := zmember(poster, ts, text)
	score := strconv.FormatInt(ts, 10)
	if _, err := pc.Command("ZADD", "posts:"+p, score, member); err != nil {
		return err
	}
	m, err := pc.Command("SMEMBERS", "followers:"+p)
	if err != nil {
		return err
	}
	futs := make([]*client.Future, 0, len(m.KVs))
	for _, kv := range m.KVs {
		fc := b.Clients[partition.UserShard(kv.Key, n)]
		futs = append(futs, fc.CommandAsync("ZADD", "tl:"+kv.Key, score, member))
	}
	for _, f := range futs {
		if _, err := f.Wait(); err != nil {
			return err
		}
	}
	return nil
}

// Check reads the timeline zset by score range.
func (b *RedisBackend) Check(user int32, since int64, login bool) (int, error) {
	c := b.Clients[shard(user, len(b.Clients))]
	m, err := c.Command("ZRANGEBYSCORE", "tl:"+UserID(user), strconv.FormatInt(since, 10), "+inf")
	if err != nil {
		return 0, err
	}
	return len(m.KVs), nil
}

// --- memcached-like (string timelines, client-managed) ---

// MemcachedBackend drives memsim servers: timelines are strings "to which
// tweets are appended"; checks reread and parse the whole string (§5.2).
type MemcachedBackend struct {
	Clients []*client.Client
}

// Name implements Backend.
func (b *MemcachedBackend) Name() string { return "memcached" }

func record(poster int32, ts int64, text string) string {
	return TimeID(ts) + "|" + UserID(poster) + "|" + text + "\n"
}

// Subscribe appends to the follower list and backfills the timeline.
func (b *MemcachedBackend) Subscribe(user, poster int32) error {
	n := len(b.Clients)
	u, p := UserID(user), UserID(poster)
	pc := b.Clients[shard(poster, n)]
	uc := b.Clients[shard(user, n)]
	if _, err := pc.Command("append", "fl:"+p, u+","); err != nil {
		return err
	}
	m, err := pc.Command("get", "posts:"+p)
	if err != nil {
		return err
	}
	if m.Value != "" {
		if _, err := uc.Command("append", "tl:"+u, m.Value); err != nil {
			return err
		}
	}
	return nil
}

// Post appends the record and fans out to each follower's string.
func (b *MemcachedBackend) Post(poster int32, ts int64, text string) error {
	n := len(b.Clients)
	p := UserID(poster)
	pc := b.Clients[shard(poster, n)]
	rec := record(poster, ts, text)
	if _, err := pc.Command("append", "posts:"+p, rec); err != nil {
		return err
	}
	m, err := pc.Command("get", "fl:"+p)
	if err != nil {
		return err
	}
	var futs []*client.Future
	seen := map[string]bool{}
	for _, f := range strings.Split(m.Value, ",") {
		if f == "" || seen[f] {
			continue // real memcached clients dedupe their follower list
		}
		seen[f] = true
		fc := b.Clients[partition.UserShard(f, n)]
		futs = append(futs, fc.CommandAsync("append", "tl:"+f, rec))
	}
	for _, f := range futs {
		if _, err := f.Wait(); err != nil {
			return err
		}
	}
	return nil
}

// Check rereads the whole timeline string and filters client-side —
// memcached has no range reads.
func (b *MemcachedBackend) Check(user int32, since int64, login bool) (int, error) {
	c := b.Clients[shard(user, len(b.Clients))]
	m, err := c.Command("get", "tl:"+UserID(user))
	if err != nil {
		return 0, err
	}
	cutoff := TimeID(since)
	count := 0
	for _, line := range strings.Split(m.Value, "\n") {
		if len(line) >= 10 && line[:10] >= cutoff {
			count++
		}
	}
	return count, nil
}

// --- PostgreSQL-like (trigger-maintained timelines) ---

// PostgresBackend drives the sqlsim Twip profile with real SQL text:
// server-side timeline maintenance via triggers, the paper's stand-in
// for materialized views. Every operation is a statement the server
// parses, plans, and executes.
type PostgresBackend struct {
	Client *client.Client // single database instance, as in §5.2
}

// Name implements Backend.
func (b *PostgresBackend) Name() string { return "PostgreSQL" }

func (b *PostgresBackend) sql(stmt string) (*rpc.Message, error) {
	return b.Client.Command("SQL", stmt)
}

// Subscribe inserts the subscription row; the trigger backfills.
func (b *PostgresBackend) Subscribe(user, poster int32) error {
	_, err := b.sql("INSERT INTO subs VALUES (" +
		sqlsim.Quote(UserID(user)) + ", " + sqlsim.Quote(UserID(poster)) + ")")
	return err
}

// Post inserts the post row; the trigger fans out.
func (b *PostgresBackend) Post(poster int32, ts int64, text string) error {
	_, err := b.sql("INSERT INTO posts VALUES (" +
		sqlsim.Quote(UserID(poster)) + ", " + sqlsim.Quote(TimeID(ts)) + ", " + sqlsim.Quote(text) + ")")
	return err
}

// Check selects the timeline index range — the §2.1 query.
func (b *PostgresBackend) Check(user int32, since int64, login bool) (int, error) {
	m, err := b.sql("SELECT * FROM timelines WHERE user = " + sqlsim.Quote(UserID(user)) +
		" AND time >= " + sqlsim.Quote(TimeID(since)) + " ORDER BY time")
	if err != nil {
		return 0, err
	}
	return len(m.KVs), nil
}

// ensure interface conformance
var (
	_ Backend = (*PequodBackend)(nil)
	_ Backend = (*ClientPequodBackend)(nil)
	_ Backend = (*RedisBackend)(nil)
	_ Backend = (*MemcachedBackend)(nil)
	_ Backend = (*PostgresBackend)(nil)
)

// Describe returns a one-line summary for experiment logs.
func Describe(b Backend, servers int) string {
	return fmt.Sprintf("%s (%d server(s))", b.Name(), servers)
}
