// Package twip implements the paper's Twitter-like example application
// (§2.1, §5.1): the social graph, the operation mix, the cache joins, and
// pluggable backends so the identical workload drives Pequod, client
// Pequod, and the §5.2 comparison systems.
package twip

import (
	"fmt"
	"math"
	"math/rand"
	"sort"
)

// Graph is a synthetic follower graph standing in for the 2009 Twitter
// crawl (see DESIGN.md §4): follower counts follow a Zipf-like power law,
// reproducing the heavy tail that drives updater fan-out, celebrity
// behavior, and log-proportional post rates.
type Graph struct {
	Users int
	// Following[u] lists the posters u subscribes to (sorted, unique).
	Following [][]int32
	// Followers[p] lists the users subscribed to p (sorted, unique).
	Followers [][]int32

	// postCDF is the cumulative post-probability distribution: "The
	// probability that a user posts a message is proportional to the log
	// of their follower count" (§5.1).
	postCDF []float64
}

// UserID renders a user index as its fixed-width key component; fixed
// width keeps slot values prefix-free (see package pattern).
func UserID(i int32) string { return fmt.Sprintf("u%07d", i) }

// TimeID renders a logical timestamp fixed-width so timelines sort by
// time lexicographically.
func TimeID(t int64) string { return fmt.Sprintf("%010d", t) }

// Generate builds a graph with the given user and edge count,
// deterministically from seed.
func Generate(users, edges int, seed int64) *Graph {
	rng := rand.New(rand.NewSource(seed))
	g := &Graph{
		Users:     users,
		Following: make([][]int32, users),
		Followers: make([][]int32, users),
	}
	// Popularity via Zipf over a permuted ID space so popular users are
	// scattered across the partitioned keyspace.
	zipf := rand.NewZipf(rng, 1.3, 4, uint64(users-1))
	perm := rng.Perm(users)

	type edge struct{ u, p int32 }
	seen := make(map[edge]bool, edges)
	for len(seen) < edges {
		u := int32(rng.Intn(users))
		p := int32(perm[zipf.Uint64()])
		if u == p {
			continue
		}
		e := edge{u, p}
		if seen[e] {
			continue
		}
		seen[e] = true
		g.Following[u] = append(g.Following[u], p)
		g.Followers[p] = append(g.Followers[p], u)
	}
	for i := range g.Following {
		sortInt32(g.Following[i])
		sortInt32(g.Followers[i])
	}
	g.buildPostCDF()
	return g
}

func sortInt32(s []int32) {
	sort.Slice(s, func(i, j int) bool { return s[i] < s[j] })
}

func (g *Graph) buildPostCDF() {
	g.postCDF = make([]float64, g.Users)
	sum := 0.0
	for i := 0; i < g.Users; i++ {
		w := math.Log(1 + float64(len(g.Followers[i])))
		if w < 0.01 {
			w = 0.01 // users with no followers still tweet occasionally
		}
		sum += w
		g.postCDF[i] = sum
	}
}

// SamplePoster picks a poster with probability proportional to the log of
// their follower count (§5.1).
func (g *Graph) SamplePoster(rng *rand.Rand) int32 {
	x := rng.Float64() * g.postCDF[g.Users-1]
	return int32(sort.SearchFloat64s(g.postCDF, x))
}

// Celebrities returns the users with at least minFollowers followers, for
// the §2.3 celebrity-join experiments.
func (g *Graph) Celebrities(minFollowers int) []int32 {
	var out []int32
	for i := 0; i < g.Users; i++ {
		if len(g.Followers[i]) >= minFollowers {
			out = append(out, int32(i))
		}
	}
	return out
}

// Edges returns the total relationship count.
func (g *Graph) Edges() int {
	n := 0
	for _, f := range g.Following {
		n += len(f)
	}
	return n
}

// MaxFollowers reports the largest follower count (tail heaviness check).
func (g *Graph) MaxFollowers() int {
	m := 0
	for _, f := range g.Followers {
		if len(f) > m {
			m = len(f)
		}
	}
	return m
}
