package twip

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"math/rand"
	"testing"
)

// workloadDigest hashes every field of every op, so any drift in kind,
// order, targets, payloads, or since-markers changes it.
func workloadDigest(w *Workload) string {
	h := sha256.New()
	fmt.Fprintf(h, "active=%v end=%d\n", w.Active, w.EndTime)
	for _, op := range w.Ops {
		fmt.Fprintf(h, "%d|%d|%d|%d|%d|%q\n", op.Kind, op.User, op.Target, op.Time, op.Since, op.Text)
	}
	return hex.EncodeToString(h.Sum(nil))
}

// TestGenerateWorkloadGolden pins the generator's exact output for a
// fixed seed. The digest was recorded from the pre-OpSampler
// implementation, so it also proves the sampler extraction preserved
// the rng draw order — every experiment keyed by a workload seed
// (repro runs, BENCH files) still replays the identical op stream.
func TestGenerateWorkloadGolden(t *testing.T) {
	g := Generate(300, 2000, 7)
	w := GenerateWorkload(g, WorkloadConfig{ActiveFraction: 0.5, ChecksPerUser: 30, Seed: 11})
	const want = "065a54de11a1cbde13b2b378b1e49c110d4dc72e41dfa8e3c7c5f920bc2062e4"
	if got := workloadDigest(w); got != want {
		t.Fatalf("workload digest drifted:\n got %s\nwant %s\n(op stream changed for a fixed seed — repro runs keyed by seed no longer replay)", got, want)
	}
}

// TestOpSamplerMatchesMixThresholds checks the sampler consumes exactly
// one rng draw per sample and respects the cumulative thresholds — the
// invariant the golden test depends on.
func TestOpSamplerMatchesMixThresholds(t *testing.T) {
	mix := Mix{Login: 10, Check: 60, Subscribe: 20, Post: 10}
	s := NewOpSampler(mix)
	r1 := rand.New(rand.NewSource(42))
	r2 := rand.New(rand.NewSource(42))
	for i := 0; i < 10_000; i++ {
		want := OpPost
		switch r := r2.Intn(100); {
		case r < 10:
			want = OpLogin
		case r < 70:
			want = OpCheck
		case r < 90:
			want = OpSubscribe
		}
		if got := s.Sample(r1); got != want {
			t.Fatalf("draw %d: Sample = %v, want %v", i, got, want)
		}
	}
	if NewOpSampler(Mix{}).Mix() != DefaultMix {
		t.Fatal("zero mix must resolve to DefaultMix")
	}
}
