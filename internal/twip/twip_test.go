package twip

import (
	"fmt"
	"math/rand"
	"testing"

	"pequod/internal/baselines"
	"pequod/internal/baselines/memsim"
	"pequod/internal/baselines/redisim"
	"pequod/internal/baselines/sqlsim"
	"pequod/internal/client"
	"pequod/internal/server"
)

func TestGraphDeterministicAndSkewed(t *testing.T) {
	g1 := Generate(500, 3000, 42)
	g2 := Generate(500, 3000, 42)
	if g1.Edges() != 3000 || g2.Edges() != 3000 {
		t.Fatalf("edges = %d, %d", g1.Edges(), g2.Edges())
	}
	for u := range g1.Following {
		if len(g1.Following[u]) != len(g2.Following[u]) {
			t.Fatal("generation not deterministic")
		}
	}
	// Heavy tail: the most-followed user far exceeds the mean.
	mean := float64(g1.Edges()) / float64(g1.Users)
	if float64(g1.MaxFollowers()) < 5*mean {
		t.Fatalf("no heavy tail: max=%d mean=%.1f", g1.MaxFollowers(), mean)
	}
	// Follower/following lists are consistent.
	count := 0
	for p, fs := range g1.Followers {
		count += len(fs)
		for _, u := range fs {
			found := false
			for _, q := range g1.Following[u] {
				if q == int32(p) {
					found = true
					break
				}
			}
			if !found {
				t.Fatal("follower/following inconsistency")
			}
		}
	}
	if count != 3000 {
		t.Fatalf("follower total = %d", count)
	}
}

func TestSamplePosterPrefersPopular(t *testing.T) {
	g := Generate(300, 3000, 7)
	rngCounts := make([]int, g.Users)
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 30000; i++ {
		rngCounts[g.SamplePoster(rng)]++
	}
	// The most-followed user should be sampled more than a friendless one.
	most, least := 0, 0
	for u := 1; u < g.Users; u++ {
		if len(g.Followers[u]) > len(g.Followers[most]) {
			most = u
		}
		if len(g.Followers[u]) < len(g.Followers[least]) {
			least = u
		}
	}
	if rngCounts[most] <= rngCounts[least] {
		t.Fatalf("sampling not log-weighted: popular=%d unpopular=%d", rngCounts[most], rngCounts[least])
	}
}

func TestWorkloadMix(t *testing.T) {
	g := Generate(200, 1000, 3)
	w := GenerateWorkload(g, WorkloadConfig{ActiveFraction: 0.5, ChecksPerUser: 40, Seed: 9})
	var logins, checks, subs, posts int
	for _, op := range w.Ops {
		switch op.Kind {
		case OpLogin:
			logins++
		case OpCheck:
			checks++
		case OpSubscribe:
			subs++
		case OpPost:
			posts++
		}
	}
	total := len(w.Ops)
	frac := func(n int) float64 { return float64(n) / float64(total) }
	// §5.1 mix (5/85/9/1) within tolerance; forced first-op logins skew
	// login fraction slightly high.
	if frac(logins) < 0.03 || frac(logins) > 0.10 {
		t.Errorf("login fraction %.3f", frac(logins))
	}
	if frac(checks) < 0.78 || frac(checks) > 0.90 {
		t.Errorf("check fraction %.3f", frac(checks))
	}
	if frac(subs) < 0.05 || frac(subs) > 0.13 {
		t.Errorf("subscribe fraction %.3f", frac(subs))
	}
	if frac(posts) < 0.002 || frac(posts) > 0.03 {
		t.Errorf("post fraction %.3f", frac(posts))
	}
	// No duplicate subscriptions (cross-backend fairness).
	type edge struct{ u, p int32 }
	seen := map[edge]bool{}
	for u, ps := range g.Following {
		for _, p := range ps {
			seen[edge{int32(u), p}] = true
		}
	}
	for _, op := range w.Ops {
		if op.Kind == OpSubscribe {
			e := edge{op.User, op.Target}
			if seen[e] {
				t.Fatal("duplicate subscription generated")
			}
			seen[e] = true
		}
	}
}

// startPequod boots n Pequod servers (with joins unless clientManaged).
func startPequod(t *testing.T, n int, joins string) []*client.Client {
	t.Helper()
	cs := make([]*client.Client, n)
	for i := 0; i < n; i++ {
		s, err := server.New(server.Config{Name: fmt.Sprintf("twip%d", i), Joins: joins})
		if err != nil {
			t.Fatal(err)
		}
		addr, err := s.Start()
		if err != nil {
			t.Fatal(err)
		}
		c, err := client.Dial(addr)
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { c.Close(); s.Close() })
		cs[i] = c
	}
	return cs
}

func startBaseline(t *testing.T, n int, mk func() baselines.Handler) []*client.Client {
	t.Helper()
	cs := make([]*client.Client, n)
	for i := 0; i < n; i++ {
		srv := baselines.NewServer(mk())
		addr, err := srv.Start()
		if err != nil {
			t.Fatal(err)
		}
		c, err := client.Dial(addr)
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { c.Close(); srv.Close() })
		cs[i] = c
	}
	return cs
}

// TestAllBackendsAgree is the Figure 7 correctness check: every system,
// running the identical sequential workload, must return identical
// timeline entry totals — the comparison then measures speed, not
// semantics.
func TestAllBackendsAgree(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-system comparison is slow")
	}
	g := Generate(150, 900, 11)
	posts := GeneratePosts(g, 300, 12, 40)
	w := GenerateWorkload(g, WorkloadConfig{
		ActiveFraction: 0.4, ChecksPerUser: 8, Seed: 13,
		StartTime: int64(len(posts)), TweetLen: 40,
	})

	backends := []Backend{
		&PequodBackend{Clients: startPequod(t, 2, Joins)},
		&ClientPequodBackend{Clients: startPequod(t, 2, "")},
		&RedisBackend{Clients: startBaseline(t, 2, func() baselines.Handler { return redisim.New() })},
		&MemcachedBackend{Clients: startBaseline(t, 2, func() baselines.Handler { return memsim.New() })},
		&PostgresBackend{Client: startBaseline(t, 1, func() baselines.Handler { return sqlsim.NewTwip() })[0]},
	}

	var entryTotals []int64
	for _, b := range backends {
		if err := LoadGraph(b, g, 4); err != nil {
			t.Fatalf("%s: LoadGraph: %v", b.Name(), err)
		}
		if err := LoadPosts(b, posts, 4); err != nil {
			t.Fatalf("%s: LoadPosts: %v", b.Name(), err)
		}
		res, err := Run(b, w, 1) // sequential for exact comparability
		if err != nil {
			t.Fatalf("%s: Run: %v", b.Name(), err)
		}
		if res.Errors != 0 {
			t.Fatalf("%s: %d op errors", b.Name(), res.Errors)
		}
		t.Logf("%s", res)
		entryTotals = append(entryTotals, res.Entries)
	}
	for i := 1; i < len(entryTotals); i++ {
		if entryTotals[i] != entryTotals[0] {
			t.Fatalf("backend %s returned %d timeline entries, %s returned %d",
				backends[i].Name(), entryTotals[i], backends[0].Name(), entryTotals[0])
		}
	}
	if entryTotals[0] == 0 {
		t.Fatal("workload produced no timeline entries; comparison is vacuous")
	}
}

func TestPequodBackendConcurrent(t *testing.T) {
	g := Generate(100, 600, 21)
	posts := GeneratePosts(g, 200, 22, 30)
	w := GenerateWorkload(g, WorkloadConfig{
		ActiveFraction: 0.5, ChecksPerUser: 6, Seed: 23,
		StartTime: int64(len(posts)), TweetLen: 30,
	})
	b := &PequodBackend{Clients: startPequod(t, 2, Joins)}
	if err := LoadGraph(b, g, 8); err != nil {
		t.Fatal(err)
	}
	if err := LoadPosts(b, posts, 8); err != nil {
		t.Fatal(err)
	}
	res, err := Run(b, w, 8)
	if err != nil || res.Errors != 0 {
		t.Fatalf("concurrent run: %v, %d errors", err, res.Errors)
	}
	if res.Entries == 0 {
		t.Fatal("no entries")
	}
}

func TestCelebrityJoins(t *testing.T) {
	// §2.3: celebrity posts go to cp|, reach timelines via the pull join,
	// and are never materialized.
	cs := startPequod(t, 1, CelebrityJoins)
	c := cs[0]
	if err := c.Put("s|u0000001|u0000009", "1"); err != nil {
		t.Fatal(err)
	}
	c.Put("s|u0000001|u0000002", "1")
	c.Put("p|u0000002|0000000100", "normal post")
	c.Put("cp|u0000009|0000000150", "celebrity post")
	kvs, err := c.Scan("t|u0000001|", "t|u0000001}", 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(kvs) != 2 {
		t.Fatalf("celebrity timeline = %v", kvs)
	}
	if kvs[1].Value != "celebrity post" {
		t.Fatalf("celebrity entry = %v", kvs[1])
	}
}
