package twip

import (
	"math/rand"
	"strings"
)

// Joins is the Twip cache-join set (§2.2): the timeline join.
const Joins = "t|<user>|<time:10>|<poster>" +
	" = check s|<user>|<poster> copy p|<poster>|<time:10>"

// CelebrityJoins is the §2.3 variant: non-celebrity posts flow through
// the eager timeline join; celebrity posts are stored under cp|, gathered
// into the time-primary helper range ct|, and joined lazily (pull) at
// read time to save timeline memory.
const CelebrityJoins = `
  ct|<time:10>|<poster> = copy cp|<poster>|<time:10>;
  t|<user>|<time:10>|<poster> = check s|<user>|<poster> copy p|<poster>|<time:10>;
  t|<user>|<time:10>|<poster> = pull copy ct|<time:10>|<poster> check s|<user>|<poster>
`

// OpKind is a workload operation type.
type OpKind int

// Twip operations, with the §5.1 frequencies: "5% initial timeline scans,
// 9% new subscriptions, 85% incremental timeline updates, and 1% posts."
const (
	OpLogin OpKind = iota // initial timeline scan (many recent tweets)
	OpCheck               // incremental timeline update
	OpSubscribe
	OpPost
)

// Op is one generated operation. Time carries the logical timestamp for
// posts; Since carries the lower bound for checks.
type Op struct {
	Kind   OpKind
	User   int32
	Target int32 // subscription target / poster
	Time   int64
	Since  int64
	Text   string
}

// Mix describes an operation mix in percent. Login+Check+Subscribe+Post
// must total 100.
type Mix struct {
	Login     int `json:"login"`
	Check     int `json:"check"`
	Subscribe int `json:"subscribe"`
	Post      int `json:"post"`
}

// Total sums the mix percentages (100 for a valid mix).
func (m Mix) Total() int { return m.Login + m.Check + m.Subscribe + m.Post }

// DefaultMix is the paper's §5.1 mix.
var DefaultMix = Mix{Login: 5, Check: 85, Subscribe: 9, Post: 1}

// OpSampler draws operation kinds one at a time in the configured mix —
// the workload *shape*, shared by the closed-loop generator below and
// the open-loop load harness (internal/loadgen), so both drive the same
// §5.1 session blend. A zero mix means DefaultMix. Each Sample consumes
// exactly one rng.Intn(100), which keeps GenerateWorkload's output
// byte-identical to the pre-extraction implementation for a fixed seed
// (pinned by TestGenerateWorkloadGolden).
type OpSampler struct {
	mix Mix
}

// NewOpSampler builds a sampler for the mix (DefaultMix if zero).
func NewOpSampler(mix Mix) OpSampler {
	if mix.Total() == 0 {
		mix = DefaultMix
	}
	return OpSampler{mix: mix}
}

// Mix returns the resolved mix the sampler draws from.
func (s OpSampler) Mix() Mix { return s.mix }

// Sample draws the next operation kind.
func (s OpSampler) Sample(rng *rand.Rand) OpKind {
	switch r := rng.Intn(100); {
	case r < s.mix.Login:
		return OpLogin
	case r < s.mix.Login+s.mix.Check:
		return OpCheck
	case r < s.mix.Login+s.mix.Check+s.mix.Subscribe:
		return OpSubscribe
	default:
		return OpPost
	}
}

// WorkloadConfig parameterizes generation.
type WorkloadConfig struct {
	// ActiveFraction is the fraction of users that ever check timelines
	// (the remainder only exist in the graph), §5.1's 70% default and
	// Figure 8's sweep variable.
	ActiveFraction float64
	// ChecksPerUser is the average number of timeline checks per active
	// user (50 in §5.1).
	ChecksPerUser int
	// Mix is the operation mix (DefaultMix if zero).
	Mix Mix
	// Seed makes generation deterministic.
	Seed int64
	// StartTime is the first logical post timestamp (pre-population uses
	// lower times).
	StartTime int64
	// TweetLen sizes the synthetic tweet body.
	TweetLen int
}

// TweetBody builds a deterministic payload of roughly n bytes — the
// synthetic tweet text shared by every workload generator (closed-loop
// here, open-loop in internal/loadgen).
func TweetBody(rng *rand.Rand, n int) string {
	return tweetBody(rng, n)
}

// tweetBody builds a deterministic payload of roughly n bytes.
func tweetBody(rng *rand.Rand, n int) string {
	if n <= 0 {
		n = 100
	}
	const words = "pequod cache join timeline fresh tweet scan range key value "
	var b strings.Builder
	for b.Len() < n {
		w := words[rng.Intn(len(words)-8):]
		if i := strings.IndexByte(w, ' '); i >= 0 {
			w = w[:i+1]
		}
		b.WriteString(w)
	}
	return b.String()[:n]
}

// Workload is a generated operation stream plus bookkeeping.
type Workload struct {
	Ops    []Op
	Active []int32 // active user ids
	// EndTime is the logical clock after the last post.
	EndTime int64
}

// GenerateWorkload produces the §5.1 session-style stream: each active
// user logs in (initial scan), then performs incremental checks,
// subscriptions, and posts in the configured mix. Operations from
// different users interleave round-robin, modeling concurrent sessions.
func GenerateWorkload(g *Graph, cfg WorkloadConfig) *Workload {
	rng := rand.New(rand.NewSource(cfg.Seed))
	sampler := NewOpSampler(cfg.Mix)
	mix := sampler.Mix()
	if cfg.ChecksPerUser == 0 {
		cfg.ChecksPerUser = 50
	}
	nActive := int(float64(g.Users) * cfg.ActiveFraction)
	if nActive < 1 {
		nActive = 1
	}
	active := make([]int32, 0, nActive)
	for _, u := range rng.Perm(g.Users)[:nActive] {
		active = append(active, int32(u))
	}

	// Track follow edges (static graph plus workload additions) so
	// generated subscriptions are never duplicates: every backend then
	// performs identical logical work.
	follows := make(map[int64]bool)
	edge := func(u, p int32) int64 { return int64(u)<<32 | int64(uint32(p)) }
	for u, ps := range g.Following {
		for _, p := range ps {
			follows[edge(int32(u), p)] = true
		}
	}
	pickTarget := func(u int32) (int32, bool) {
		for tries := 0; tries < 8; tries++ {
			p := int32(rng.Intn(g.Users))
			if p != u && !follows[edge(u, p)] {
				follows[edge(u, p)] = true
				return p, true
			}
		}
		return 0, false
	}

	// Ops per user so that checks average ChecksPerUser.
	opsPerUser := cfg.ChecksPerUser * 100 / mix.Check
	clock := cfg.StartTime
	lastCheck := make(map[int32]int64, nActive)

	w := &Workload{Active: active}
	w.Ops = make([]Op, 0, opsPerUser*nActive)
	// Interleave sessions round-robin so server-side state (timelines,
	// subscriptions) evolves concurrently, as live sessions would.
	for i := 0; i < opsPerUser; i++ {
		for _, u := range active {
			var op Op
			if i == 0 {
				op = Op{Kind: OpLogin, User: u, Since: 0}
			} else {
				switch sampler.Sample(rng) {
				case OpLogin:
					op = Op{Kind: OpLogin, User: u, Since: 0}
				case OpCheck:
					op = Op{Kind: OpCheck, User: u, Since: lastCheck[u]}
				case OpSubscribe:
					if target, ok := pickTarget(u); ok {
						op = Op{Kind: OpSubscribe, User: u, Target: target}
					} else {
						op = Op{Kind: OpCheck, User: u, Since: lastCheck[u]}
					}
				default:
					clock++
					op = Op{Kind: OpPost, User: g.SamplePoster(rng), Time: clock,
						Text: tweetBody(rng, cfg.TweetLen)}
				}
			}
			if op.Kind == OpLogin || op.Kind == OpCheck {
				lastCheck[op.User] = clock
			}
			w.Ops = append(w.Ops, op)
		}
	}
	w.EndTime = clock
	return w
}

// Prepopulation describes initial state: the subscription graph plus a
// body of historical posts (Figure 8 uses 1M posts distributed
// log-proportionally).
type Prepopulation struct {
	Posts []Op // OpPost entries, times below StartTime
}

// GeneratePosts builds n historical posts with timestamps 1..n.
func GeneratePosts(g *Graph, n int, seed int64, tweetLen int) []Op {
	rng := rand.New(rand.NewSource(seed))
	out := make([]Op, n)
	for i := 0; i < n; i++ {
		out[i] = Op{
			Kind: OpPost,
			User: g.SamplePoster(rng),
			Time: int64(i + 1),
			Text: tweetBody(rng, tweetLen),
		}
	}
	return out
}
