package twip

import (
	"fmt"
	"sync"
	"time"
)

// RunResult summarizes one experiment run.
type RunResult struct {
	Backend    string
	Duration   time.Duration
	Ops        int
	Checks     int
	Entries    int64 // timeline entries returned by checks
	Subs       int
	Posts      int
	Logins     int
	Errors     int64
	Throughput float64 // ops/sec
}

func (r RunResult) String() string {
	return fmt.Sprintf("%-14s %10.3fs  %9d ops  %9.0f ops/s  (%d logins, %d checks, %d subs, %d posts)",
		r.Backend, r.Duration.Seconds(), r.Ops, r.Throughput, r.Logins, r.Checks, r.Subs, r.Posts)
}

// LoadGraph installs the subscription graph through the backend (untimed
// setup). Subscriptions are loaded before historical posts so backfill
// work is empty for every system, putting all five Figure 7 backends in
// the same warmed state.
func LoadGraph(b Backend, g *Graph, workers int) error {
	return parallelUsers(g.Users, workers, func(u int32) error {
		for _, p := range g.Following[u] {
			if err := b.Subscribe(u, p); err != nil {
				return err
			}
		}
		return nil
	})
}

// LoadPosts feeds historical posts through the backend (untimed setup;
// fan-out costs land where each system's design puts them).
func LoadPosts(b Backend, posts []Op, workers int) error {
	var wg sync.WaitGroup
	errCh := make(chan error, workers)
	chunk := (len(posts) + workers - 1) / workers
	for w := 0; w < workers; w++ {
		lo := w * chunk
		hi := min(lo+chunk, len(posts))
		if lo >= hi {
			break
		}
		wg.Add(1)
		go func(ops []Op) {
			defer wg.Done()
			for _, op := range ops {
				if err := b.Post(op.User, op.Time, op.Text); err != nil {
					select {
					case errCh <- err:
					default:
					}
					return
				}
			}
		}(posts[lo:hi])
	}
	wg.Wait()
	select {
	case err := <-errCh:
		return err
	default:
		return nil
	}
}

func parallelUsers(users, workers int, fn func(u int32) error) error {
	var wg sync.WaitGroup
	errCh := make(chan error, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for u := w; u < users; u += workers {
				if err := fn(int32(u)); err != nil {
					select {
					case errCh <- err:
					default:
					}
					return
				}
			}
		}(w)
	}
	wg.Wait()
	select {
	case err := <-errCh:
		return err
	default:
		return nil
	}
}

// Run executes the workload to completion as fast as possible (§5.1:
// "run the workload to completion ... and measure the elapsed time").
// Workers process interleaved slices of the op stream, keeping many RPCs
// outstanding like the paper's event-driven clients.
func Run(b Backend, w *Workload, workers int) (RunResult, error) {
	res := RunResult{Backend: b.Name(), Ops: len(w.Ops)}
	for _, op := range w.Ops {
		switch op.Kind {
		case OpLogin:
			res.Logins++
		case OpCheck:
			res.Checks++
		case OpSubscribe:
			res.Subs++
		case OpPost:
			res.Posts++
		}
	}

	var wg sync.WaitGroup
	var mu sync.Mutex
	var entries int64
	var errs int64
	start := time.Now()
	for wk := 0; wk < workers; wk++ {
		wg.Add(1)
		go func(wk int) {
			defer wg.Done()
			var localEntries int64
			var localErrs int64
			for i := wk; i < len(w.Ops); i += workers {
				op := w.Ops[i]
				var err error
				switch op.Kind {
				case OpLogin:
					var n int
					n, err = b.Check(op.User, 0, true)
					localEntries += int64(n)
				case OpCheck:
					var n int
					n, err = b.Check(op.User, op.Since, false)
					localEntries += int64(n)
				case OpSubscribe:
					err = b.Subscribe(op.User, op.Target)
				case OpPost:
					err = b.Post(op.User, op.Time, op.Text)
				}
				if err != nil {
					localErrs++
				}
			}
			mu.Lock()
			entries += localEntries
			errs += localErrs
			mu.Unlock()
		}(wk)
	}
	wg.Wait()
	res.Duration = time.Since(start)
	res.Entries = entries
	res.Errors = errs
	if res.Duration > 0 {
		res.Throughput = float64(res.Ops) / res.Duration.Seconds()
	}
	return res, nil
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
