package server

import (
	"context"
	"fmt"
	"testing"
	"time"

	"pequod/internal/client"
)

// durableConfig returns a server config with the durable store rooted
// at dir, synced fast enough that tests never wait on the flush loop
// but with snapshots effectively off (tests trigger them explicitly).
func durableConfig(name, dir string) Config {
	return Config{
		Name:             name,
		DataDir:          dir,
		SyncInterval:     time.Millisecond,
		SnapshotInterval: time.Hour,
	}
}

// TestWarmRestartRecoversRows: a server with a data dir closed and
// reopened on the same dir comes back with its base rows — some from
// the snapshot, some replayed from the log written after it — its
// joins installed, and its computed ranges recomputed from the
// restored bases (join outputs are never persisted).
func TestWarmRestartRecoversRows(t *testing.T) {
	ctx := context.Background()
	dir := t.TempDir()
	s, err := New(durableConfig("wr", dir))
	if err != nil {
		t.Fatal(err)
	}
	addr, err := s.Start()
	if err != nil {
		t.Fatal(err)
	}
	c, err := client.Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	if err := c.AddJoin(timelineJoin); err != nil {
		t.Fatal(err)
	}
	if err := c.Put("s|ann|bob", "1"); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		if err := c.Put(fmt.Sprintf("p|bob|%03d", i), fmt.Sprintf("v%d", i)); err != nil {
			t.Fatal(err)
		}
	}
	// Materialize the timeline so its warm range lands in the snapshot.
	if kvs, err := c.Scan("t|ann|", "t|ann}", 0); err != nil || len(kvs) != 10 {
		t.Fatalf("timeline before restart = %d kvs, %v", len(kvs), err)
	}
	if n, err := c.SnapshotNow(ctx); err != nil || n == 0 {
		t.Fatalf("SnapshotNow = %d, %v", n, err)
	}
	// Rows written after the snapshot must come back from the log.
	for i := 10; i < 20; i++ {
		if err := c.Put(fmt.Sprintf("p|bob|%03d", i), fmt.Sprintf("v%d", i)); err != nil {
			t.Fatal(err)
		}
	}
	if had, err := c.Remove("p|bob|000"); err != nil || !had {
		t.Fatalf("Remove = %v %v", had, err)
	}
	c.Close()
	s.Close()

	s2, err := New(durableConfig("wr2", dir))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(s2.Close)
	addr2, err := s2.Start()
	if err != nil {
		t.Fatal(err)
	}
	c2, err := client.Dial(addr2)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { c2.Close() })
	if n, err := c2.Count("p|", "p}"); err != nil || n != 19 {
		t.Fatalf("posts after restart = %d, %v", n, err)
	}
	if v, found, err := c2.Get("p|bob|015"); err != nil || !found || v != "v15" {
		t.Fatalf("log-replayed row = %q %v %v", v, found, err)
	}
	if _, found, _ := c2.Get("p|bob|000"); found {
		t.Fatal("removed row resurrected by replay")
	}
	// The timeline was never written to disk; it must recompute from
	// the restored bases, including the post-snapshot rows.
	kvs, err := c2.Scan("t|ann|", "t|ann}", 0)
	if err != nil || len(kvs) != 19 {
		t.Fatalf("timeline after restart = %d kvs, %v", len(kvs), err)
	}
	if kvs[18].Key != "t|ann|019|bob" || kvs[18].Value != "v19" {
		t.Fatalf("recomputed timeline tail = %v", kvs[18])
	}
	st, err := c2.StatSnapshot(ctx)
	if err != nil || st.Durable == nil || st.Durable.Recovery == nil {
		t.Fatalf("durable stat after restart = %+v, %v", st, err)
	}
	rec := st.Durable.Recovery
	if rec.SnapshotRows == 0 || rec.LogRecords == 0 || rec.RestoredRows == 0 {
		t.Fatalf("recovery stats = %+v", rec)
	}
}

// TestMemoryOnlyServerHasNoDurableState: without a data dir nothing
// durable is wired — no stat block, and the snapshot RPC refuses.
func TestMemoryOnlyServerHasNoDurableState(t *testing.T) {
	ctx := context.Background()
	_, c := startServer(t, Config{Name: "mem"})
	if err := c.Put("a|1", "v"); err != nil {
		t.Fatal(err)
	}
	st, err := c.StatSnapshot(ctx)
	if err != nil || st.Durable != nil {
		t.Fatalf("memory-only durable stat = %+v, %v", st.Durable, err)
	}
	if _, err := c.SnapshotNow(ctx); err == nil {
		t.Fatal("SnapshotNow succeeded without a data dir")
	}
	if _, err := c.RebuildRange(ctx, "a|", "a}"); err == nil {
		t.Fatal("RebuildRange succeeded without a data dir")
	}
}

// BenchmarkDurableWriteBehind measures the write path with the durable
// store off and on. The write-behind contract is that logging is an
// enqueue off the hot path — the fsync batches run behind pipelined
// traffic — so "on" must stay within a small constant factor of "off"
// (the issue's gate is <15% on amortized puts). Writes are pipelined
// (a window of in-flight futures, how any loaded client drives the
// wire) so the measurement amortizes the RPC round trip the way real
// traffic does instead of serializing one put per RTT.
func BenchmarkDurableWriteBehind(b *testing.B) {
	const window = 64
	for _, mode := range []string{"off", "on"} {
		b.Run(mode, func(b *testing.B) {
			cfg := Config{Name: "bench-" + mode}
			if mode == "on" {
				cfg.DataDir = b.TempDir() // default sync/snapshot cadence
			}
			s, err := New(cfg)
			if err != nil {
				b.Fatal(err)
			}
			addr, err := s.Start()
			if err != nil {
				b.Fatal(err)
			}
			c, err := client.Dial(addr)
			if err != nil {
				b.Fatal(err)
			}
			b.Cleanup(func() {
				c.Close()
				s.Close()
			})
			futs := make([]*client.Future, 0, window)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				futs = append(futs, c.PutAsync(fmt.Sprintf("p|u%03d|%09d", i%512, i), "v"))
				if len(futs) == window {
					for _, f := range futs {
						if _, err := f.Wait(); err != nil {
							b.Fatal(err)
						}
					}
					futs = futs[:0]
				}
			}
			for _, f := range futs {
				if _, err := f.Wait(); err != nil {
					b.Fatal(err)
				}
			}
			b.StopTimer()
		})
	}
}
