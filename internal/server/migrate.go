package server

// Cluster-level live migration and elastic membership, server side: the
// RPCs that move a key range between servers — or a whole server in or
// out of the cluster — without stopping it.
//
//	ExtractRange  (at the source)       capture the range + flip ownership
//	SpliceRange   (at the destination)  fence stale pushes + install
//	MapUpdate     (at every member)     adopt the map, drop stale replicas
//	JoinCluster   (at a fresh server)   wire mesh + joins + gate in one call
//	Drain         (at a drained server) tear down its mesh wiring
//
// The coordinator — pequod's cluster client, or the pequod-cli move /
// rebalance / add / drain subcommands — drives them; see
// internal/cluster. The correctness-critical parts live in the layers
// below: the shard pool swaps its ownership gate under the affected
// shards' locks (internal/shard/clustergate.go), and every routed
// operation re-validates ownership under the lock it holds, so a racing
// client gets a NotOwner reply (and retries at the new owner) instead of
// a lost write or a gap. Every map-bearing message carries the map's
// total-order position (epoch, version), its bounds, the member address
// per owner index, and the recipient's self set — membership changes
// reshape all of them, and they swap atomically with the data transfer.
//
// This file contributes the network-level fences: before the
// destination splices, and before a member drops a moved range,
// in-flight subscription pushes from the range's old owner are fenced
// with a ping — the reply follows every queued push on that connection,
// so nothing stale can be applied afterwards and overwrite a newer
// value. Fences are addressed by member address, which stays meaningful
// when a join or drain shifts owner indexes.

import (
	"context"
	"fmt"
	"strings"
	"time"

	"pequod/internal/client"
	"pequod/internal/core"
	"pequod/internal/keys"
	"pequod/internal/partition"
	"pequod/internal/rpc"
	"pequod/internal/shard"
)

// handleExtractRange serves MsgExtractRange: remove [m.Lo, m.Hi) from
// this server and return its owned rows and warm computed coverage,
// atomically ceasing to serve the range. The request carries the
// successor map (exactly one version ahead) with this member's peers
// and self under it; a stale coordinator gets StatusNotOwner with the
// current map. The extracted state is retained pool-side until a
// published map confirms the destination serves the range.
func (s *Server) handleExtractRange(m *rpc.Message) *rpc.Message {
	next, err := partition.NewEpochVersioned(m.Epoch, m.MapVersion, m.Bounds...)
	if err != nil {
		return rpc.ErrReply(m.Seq, err)
	}
	rs, err := s.pool.ExtractClusterRange(keys.Range{Lo: m.Lo, Hi: m.Hi}, next, m.Peers, shard.SelfSet(m.Self))
	if err != nil {
		return errReply(m.Seq, err)
	}
	s.adoptMeshView(next, m.Peers, m.Self)
	// The extracted rows are NOT logged as removes: they linger in the
	// durable lineage until the next snapshot, which is what makes this
	// member a last-resort rebuild source if the destination dies before
	// anyone else holds a copy (see handleRebuildRange).
	s.persistMeta()
	r := rpc.OKReply(m.Seq)
	r.KVs = rs.KVs
	r.Warm = rs.Warm
	return r
}

// handleSpliceRange serves MsgSpliceRange: install an extracted range
// and atomically start serving it. m.Src names the member address the
// range came from; pushes in flight from that peer are fenced first so a
// stale replicated write cannot land after the splice and overwrite a
// newer owner write here.
func (s *Server) handleSpliceRange(m *rpc.Message, dl time.Time) *rpc.Message {
	next, err := partition.NewEpochVersioned(m.Epoch, m.MapVersion, m.Bounds...)
	if err != nil {
		return rpc.ErrReply(m.Seq, err)
	}
	if m.Src != "" {
		if err := s.fenceAddr(m.Src, dl); err != nil {
			return rpc.ErrReply(m.Seq, err)
		}
	}
	rs := core.RangeState{R: keys.Range{Lo: m.Lo, Hi: m.Hi}, KVs: m.KVs, Warm: m.Warm}
	if err := s.pool.SpliceClusterRange(rs, next, m.Peers, shard.SelfSet(m.Self)); err != nil {
		return errReply(m.Seq, err)
	}
	s.adoptMeshView(next, m.Peers, m.Self)
	// A splice installs rows silently (no change notifications, so
	// subscribers don't see them as fresh writes), which also bypasses
	// the write-behind hook — log them explicitly or the migrated range
	// would not survive a restart here.
	s.durableLogKVs(m.KVs)
	s.persistMeta()
	return rpc.OKReply(m.Seq)
}

// handleMapUpdate serves MsgMapUpdate: adopt a newer cluster map. On
// first contact it installs the member's view (map + peers + self set);
// on a migration or membership change it fences the old owners of every
// range that changed hands between two other servers, then lets the
// pool reconcile its cached state (drop stale replicas, demote ranges
// lost without an extraction, restore retained ranges handed back) so
// the next read re-fetches from — and re-subscribes at — the new home.
func (s *Server) handleMapUpdate(m *rpc.Message, dl time.Time) *rpc.Message {
	next, err := partition.NewEpochVersioned(m.Epoch, m.MapVersion, m.Bounds...)
	if err != nil {
		return rpc.ErrReply(m.Seq, err)
	}
	if g := s.pool.Gate(); g != nil && next.NewerThan(g.Map.Epoch(), g.Map.Version()) &&
		len(g.Peers) == g.Map.Servers() && len(m.Peers) == next.Servers() {
		// Fence before the drop: every change the old owners pushed for
		// the departing ranges must be applied (or discarded as stale by
		// the feeds) before the local copies go, or a late push would
		// resurrect dropped data.
		selfA := selfAddrs(m.Peers, m.Self)
		fenced := map[string]bool{}
		for _, d := range partition.DiffAddrs(g.Map, g.Peers, next, m.Peers) {
			oldA := g.Peers[g.Map.Owner(d.Lo)]
			newA := m.Peers[next.Owner(d.Lo)]
			if selfA[oldA] || selfA[newA] || fenced[oldA] {
				continue
			}
			fenced[oldA] = true
			if err := s.fenceAddr(oldA, dl); err != nil {
				return rpc.ErrReply(m.Seq, err)
			}
		}
	}
	s.pool.ApplyMapUpdate(next, m.Peers, shard.SelfSet(m.Self))
	s.adoptMeshView(next, m.Peers, m.Self)
	s.persistMeta()
	r := rpc.OKReply(m.Seq)
	// Teach the publisher the map this server actually holds: a client
	// that starts from the deployment's original bounds (version 0)
	// after migrations have run publishes a stale map, which the pool
	// ignores — the reply carries the newer one so the client adopts it
	// instead of discovering it through NotOwner bounces.
	if g := s.pool.Gate(); g != nil {
		r.Epoch = g.Map.Epoch()
		r.MapVersion = g.Map.Version()
		r.Bounds = g.Map.Bounds()
		r.Peers = g.Peers
	}
	return r
}

// handleJoinCluster serves MsgJoinCluster at a fresh server: one call
// installs the current cluster map as its gate (owning nothing yet, so
// it answers NotOwner until a splice grants it a range), wires it into
// the subscription mesh, and installs the cluster's join set. The
// coordinator then grants it an initial slice through the ordinary
// extract/splice/publish protocol — by the time any client routes to
// the new member, it is gated, meshed, and computing.
func (s *Server) handleJoinCluster(m *rpc.Message) *rpc.Message {
	pmap, err := partition.NewEpochVersioned(m.Epoch, m.MapVersion, m.Bounds...)
	if err != nil {
		return rpc.ErrReply(m.Seq, err)
	}
	if len(m.Peers) != pmap.Servers() {
		return rpc.ErrReply(m.Seq, fmt.Errorf("pequod server: %d bounds need %d peers, have %d",
			len(m.Bounds), pmap.Servers(), len(m.Peers)))
	}
	// Gate first: from this point every operation outside the (empty)
	// self set bounces with NotOwner instead of landing on an unwired
	// server.
	s.pool.ApplyMapUpdate(pmap, m.Peers, shard.SelfSet(m.Self))
	if err := s.ConnectMesh(pmap, m.Peers, m.Self, m.Tables...); err != nil {
		return rpc.ErrReply(m.Seq, err)
	}
	// Install the cluster's join set — idempotently, so a drained member
	// re-joining with the joins already installed (or holding a prefix
	// of a join set that grew since) does not fail on duplicates.
	if have := s.pool.InstalledText(); m.Text != "" && m.Text != have {
		text := m.Text
		if have != "" {
			if !strings.HasPrefix(m.Text, have+"\n") {
				return rpc.ErrReply(m.Seq, fmt.Errorf("pequod server: joining with a conflicting join set already installed"))
			}
			text = m.Text[len(have)+1:]
		}
		if err := s.pool.InstallText(text); err != nil {
			return rpc.ErrReply(m.Seq, err)
		}
	}
	s.persistMeta()
	return rpc.OKReply(m.Seq)
}

// handleDrain serves MsgDrain at a member whose last range has moved
// out: its mesh wiring (peer connections, remote loaders' feeds) is
// torn down, while the gate — now owning nothing under the published
// post-drain map — stays, so stale clients still get NotOwner replies
// carrying that map and re-route instead of failing. The process keeps
// running; re-adding it later goes through JoinCluster again.
func (s *Server) handleDrain(m *rpc.Message) *rpc.Message {
	s.mmu.Lock()
	mesh := s.mesh
	s.mesh = nil
	s.mmu.Unlock()
	if mesh != nil {
		mesh.closeAll()
	}
	// A drained member holds replicas for no one; re-adding it later
	// publishes a fresh assignment through JoinCluster's publish round.
	s.rmu.Lock()
	repl := s.repl
	s.repl = nil
	s.rmu.Unlock()
	if repl != nil {
		repl.closeAll()
	}
	// Persist the post-drain position: a restarted drained member must
	// still answer NotOwner with the current bounds, not serve stale
	// data it no longer owns.
	s.persistMeta()
	r := rpc.OKReply(m.Seq)
	if g := s.pool.Gate(); g != nil {
		r.Epoch = g.Map.Epoch()
		r.MapVersion = g.Map.Version()
		r.Bounds = g.Map.Bounds()
		r.Peers = g.Peers
	}
	return r
}

// fenceAddr pings this server's connections to the peer at addr, if
// any: the replies follow every subscription push the peer had queued
// for us, and our readers apply pushes in order, so afterwards nothing
// sent before the fence is still in flight. A dead peer owes us
// nothing.
func (s *Server) fenceAddr(addr string, dl time.Time) error {
	s.mmu.Lock()
	var conns []*client.Client
	if s.mesh != nil {
		for _, l := range s.mesh.loaders {
			if c := l.connTo(addr); c != nil {
				conns = append(conns, c)
			}
		}
	}
	s.mmu.Unlock()
	if len(conns) == 0 {
		return nil
	}
	ctx := context.Background()
	if !dl.IsZero() {
		var cancel context.CancelFunc
		ctx, cancel = context.WithDeadline(ctx, dl)
		defer cancel()
	}
	for _, c := range conns {
		if err := c.Ping(ctx); err != nil && ctx.Err() != nil {
			return ctx.Err()
		}
	}
	return nil
}

// adoptMeshView publishes a newer cluster view to the mesh's loaders
// and feeds (no-op when not meshed or not newer) and resizes the peer
// connection set when the member list changed: connections to members
// that left close, and members that joined dial on demand (eagerly
// here, lazily in the load path if this attempt fails).
func (s *Server) adoptMeshView(next *partition.Map, peers []string, self []int) {
	s.mmu.Lock()
	defer s.mmu.Unlock()
	if s.mesh == nil || len(peers) != next.Servers() {
		return
	}
	cur := s.mesh.view.Load()
	if cur != nil && !next.NewerThan(cur.pmap.Epoch(), cur.pmap.Version()) {
		return
	}
	nv := &meshView{pmap: next, addrs: append([]string(nil), peers...), self: selfAddrs(peers, self)}
	s.mesh.view.Store(nv)
	want := make(map[string]bool, len(nv.addrs))
	for _, a := range nv.addrs {
		if !nv.self[a] {
			want[a] = true
		}
	}
	// Only close departed members' connections here; fresh members dial
	// lazily on the load path. An eager dial under mmu would stall this
	// server's quiesce/fence/map-update handling for the full connect
	// timeout whenever a published view still names an unreachable
	// address (a revert after a member died does exactly that).
	for _, l := range s.mesh.loaders {
		l.retain(want)
	}
}
