package server

// Cluster-level live migration, server side: the three transfer RPCs
// that move a key range between servers without stopping the cluster.
//
//	ExtractRange  (at the source)       capture the range + flip ownership
//	SpliceRange   (at the destination)  fence stale pushes + install
//	MapUpdate     (at every member)     adopt the map, drop stale replicas
//
// The coordinator — pequod's cluster client, or the pequod-cli move /
// rebalance subcommands — drives them in that order; see
// internal/cluster. The correctness-critical parts live in the layers
// below: the shard pool swaps its ownership gate under the affected
// shards' locks (internal/shard/clustergate.go), and every routed
// operation re-validates ownership under the lock it holds, so a racing
// client gets a NotOwner reply (and retries at the new owner) instead of
// a lost write or a gap. This file contributes the network-level fences:
// before the destination splices, and before a member drops a moved
// range, in-flight subscription pushes from the range's old owner are
// fenced with a ping — the reply follows every queued push on that
// connection, so nothing stale can be applied afterwards and overwrite a
// newer value.

import (
	"context"
	"time"

	"pequod/internal/client"
	"pequod/internal/core"
	"pequod/internal/keys"
	"pequod/internal/partition"
	"pequod/internal/rpc"
)

// handleExtractRange serves MsgExtractRange: remove [m.Lo, m.Hi) from
// this server and return its owned rows and warm computed coverage,
// atomically ceasing to serve the range. The request carries the
// successor map (exactly one version ahead); a stale coordinator gets
// StatusNotOwner with the current map.
func (s *Server) handleExtractRange(m *rpc.Message) *rpc.Message {
	next, err := partition.NewVersioned(m.MapVersion, m.Bounds...)
	if err != nil {
		return rpc.ErrReply(m.Seq, err)
	}
	rs, err := s.pool.ExtractClusterRange(keys.Range{Lo: m.Lo, Hi: m.Hi}, next)
	if err != nil {
		return errReply(m.Seq, err)
	}
	s.adoptMeshView(next)
	r := rpc.OKReply(m.Seq)
	r.KVs = rs.KVs
	r.Warm = rs.Warm
	return r
}

// handleSpliceRange serves MsgSpliceRange: install an extracted range
// and atomically start serving it. m.Owner names the owner index the
// range came from; pushes in flight from that peer are fenced first so a
// stale replicated write cannot land after the splice and overwrite a
// newer owner write here.
func (s *Server) handleSpliceRange(m *rpc.Message, dl time.Time) *rpc.Message {
	next, err := partition.NewVersioned(m.MapVersion, m.Bounds...)
	if err != nil {
		return rpc.ErrReply(m.Seq, err)
	}
	if m.Owner >= 0 {
		if err := s.fencePeer(m.Owner, dl); err != nil {
			return rpc.ErrReply(m.Seq, err)
		}
	}
	rs := core.RangeState{R: keys.Range{Lo: m.Lo, Hi: m.Hi}, KVs: m.KVs, Warm: m.Warm}
	if err := s.pool.SpliceClusterRange(rs, next); err != nil {
		return errReply(m.Seq, err)
	}
	s.adoptMeshView(next)
	return rpc.OKReply(m.Seq)
}

// handleMapUpdate serves MsgMapUpdate: adopt a newer cluster map. On
// first contact it installs the member's view (map + self set); on a
// migration it fences the old owners of every range that changed hands
// between two other servers, then drops the member's cached state for
// those ranges so the next read re-fetches from — and re-subscribes at —
// the new home.
func (s *Server) handleMapUpdate(m *rpc.Message, dl time.Time) *rpc.Message {
	next, err := partition.NewVersioned(m.MapVersion, m.Bounds...)
	if err != nil {
		return rpc.ErrReply(m.Seq, err)
	}
	self := make(map[int]bool, len(m.Self))
	for _, i := range m.Self {
		self[i] = true
	}
	if g := s.pool.Gate(); g != nil && g.Map.Version() < next.Version() {
		// Fence before the drop: every change the old owners pushed for
		// the departing ranges must be applied (or discarded as stale by
		// the feeds) before the local copies go, or a late push would
		// resurrect dropped data.
		fenced := map[int]bool{}
		for _, d := range partition.Diff(g.Map, next) {
			old := g.Map.Owner(d.Lo)
			if g.Self[old] || g.Self[next.Owner(d.Lo)] || fenced[old] {
				continue
			}
			fenced[old] = true
			if err := s.fencePeer(old, dl); err != nil {
				return rpc.ErrReply(m.Seq, err)
			}
		}
	}
	s.pool.ApplyMapUpdate(next, self)
	s.adoptMeshView(next)
	r := rpc.OKReply(m.Seq)
	// Teach the publisher the map this server actually holds: a client
	// that starts from the deployment's original bounds (version 0)
	// after migrations have run publishes a stale map, which the pool
	// ignores — the reply carries the newer one so the client adopts it
	// instead of discovering it through NotOwner bounces.
	if g := s.pool.Gate(); g != nil {
		r.MapVersion = g.Map.Version()
		r.Bounds = g.Map.Bounds()
	}
	return r
}

// fencePeer pings this server's connections to the peer at owner index,
// if any: the replies follow every subscription push the peer had queued
// for us, and our readers apply pushes in order, so afterwards nothing
// sent before the fence is still in flight. A dead peer owes us nothing.
func (s *Server) fencePeer(owner int, dl time.Time) error {
	s.mmu.Lock()
	var conns []*client.Client
	if s.mesh != nil {
		for _, l := range s.mesh.loaders {
			if owner < len(l.peers) && l.peers[owner] != nil {
				conns = append(conns, l.peers[owner])
			}
		}
	}
	s.mmu.Unlock()
	if len(conns) == 0 {
		return nil
	}
	ctx := context.Background()
	if !dl.IsZero() {
		var cancel context.CancelFunc
		ctx, cancel = context.WithDeadline(ctx, dl)
		defer cancel()
	}
	for _, c := range conns {
		if err := c.Ping(ctx); err != nil && ctx.Err() != nil {
			return ctx.Err()
		}
	}
	return nil
}

// adoptMeshView publishes a newer cluster map to the mesh's loaders and
// feeds (no-op when not meshed or not newer).
func (s *Server) adoptMeshView(next *partition.Map) {
	s.mmu.Lock()
	defer s.mmu.Unlock()
	if s.mesh == nil {
		return
	}
	if cur := s.mesh.view.Load(); cur == nil || cur.Version() < next.Version() {
		s.mesh.view.Store(next)
	}
}
