package server

import (
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"

	"pequod/internal/backdb"
	"pequod/internal/client"
	"pequod/internal/partition"
	"pequod/internal/rpc"
)

const timelineJoin = "t|<user>|<time>|<poster> = check s|<user>|<poster> copy p|<poster>|<time>"

func startServer(t *testing.T, cfg Config) (*Server, *client.Client) {
	t.Helper()
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	addr, err := s.Start()
	if err != nil {
		t.Fatal(err)
	}
	c, err := client.Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		c.Close()
		s.Close()
	})
	return s, c
}

func TestBasicOps(t *testing.T) {
	_, c := startServer(t, Config{Name: "basic"})
	if err := c.Put("p|bob|100", "Hi"); err != nil {
		t.Fatal(err)
	}
	v, found, err := c.Get("p|bob|100")
	if err != nil || !found || v != "Hi" {
		t.Fatalf("Get = %q %v %v", v, found, err)
	}
	if _, found, _ := c.Get("p|bob|999"); found {
		t.Fatal("absent key found")
	}
	had, err := c.Remove("p|bob|100")
	if err != nil || !had {
		t.Fatal("Remove")
	}
	if had, _ := c.Remove("p|bob|100"); had {
		t.Fatal("double remove")
	}
}

func TestScanAndCount(t *testing.T) {
	_, c := startServer(t, Config{})
	for i := 0; i < 20; i++ {
		if err := c.Put(fmt.Sprintf("a|%02d", i), "v"); err != nil {
			t.Fatal(err)
		}
	}
	kvs, err := c.Scan("a|05", "a|10", 0)
	if err != nil || len(kvs) != 5 {
		t.Fatalf("Scan = %v, %v", kvs, err)
	}
	kvs, _ = c.Scan("a|", "a}", 7)
	if len(kvs) != 7 {
		t.Fatalf("limited scan = %d", len(kvs))
	}
	n, err := c.Count("a|", "a}")
	if err != nil || n != 20 {
		t.Fatalf("Count = %d, %v", n, err)
	}
}

func TestJoinOverRPC(t *testing.T) {
	_, c := startServer(t, Config{})
	if err := c.AddJoin(timelineJoin); err != nil {
		t.Fatal(err)
	}
	if err := c.AddJoin("garbage"); err == nil {
		t.Fatal("bad join accepted")
	}
	c.Put("s|ann|bob", "1")
	c.Put("p|bob|100", "Hi")
	kvs, err := c.Scan("t|ann|", "t|ann}", 0)
	if err != nil || len(kvs) != 1 || kvs[0].Key != "t|ann|100|bob" || kvs[0].Value != "Hi" {
		t.Fatalf("timeline = %v, %v", kvs, err)
	}
	// Incremental maintenance visible over RPC.
	c.Put("p|bob|120", "again")
	v, found, _ := c.Get("t|ann|120|bob")
	if !found || v != "again" {
		t.Fatal("incremental update")
	}
}

func TestConfiguredJoinsAndSubtables(t *testing.T) {
	_, c := startServer(t, Config{
		Joins:          timelineJoin,
		SubtableDepths: map[string]int{"t": 2},
	})
	c.Put("s|ann|bob", "1")
	c.Put("p|bob|100", "Hi")
	kvs, _ := c.Scan("t|ann|", "t|ann}", 0)
	if len(kvs) != 1 {
		t.Fatalf("timeline = %v", kvs)
	}
	if err := c.SetSubtableDepth("p", 2); err != nil {
		t.Fatal(err)
	}
}

func TestStat(t *testing.T) {
	_, c := startServer(t, Config{Name: "statsrv"})
	c.Put("x|1", "v")
	st, err := c.Stat()
	if err != nil || !strings.Contains(st, `"statsrv"`) || !strings.Contains(st, `"entries":1`) {
		t.Fatalf("Stat = %s, %v", st, err)
	}
}

func TestPipelinedClients(t *testing.T) {
	_, c := startServer(t, Config{})
	// Many outstanding RPCs from concurrent goroutines on one connection.
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			futs := make([]*client.Future, 100)
			for i := range futs {
				futs[i] = c.PutAsync(fmt.Sprintf("k|%d|%03d", g, i), "v")
			}
			for _, f := range futs {
				if m, err := f.Wait(); err != nil || m.Status != rpc.StatusOK {
					t.Errorf("async put failed: %v", err)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	n, _ := c.Count("k|", "k}")
	if n != 800 {
		t.Fatalf("Count = %d", n)
	}
}

func TestWriteAroundDatabase(t *testing.T) {
	// §2's deployment: application writes go to the database; Pequod
	// loads on demand and the database keeps it fresh via notification.
	db := backdb.New()
	defer db.Close()
	db.Put("s|ann|bob", "1")
	db.Put("p|bob|100", "from the db")

	s, c := startServer(t, Config{Joins: timelineJoin})
	s.AttachDB(db, "s", "p")

	kvs, err := c.Scan("t|ann|", "t|ann}", 0)
	if err != nil || len(kvs) != 1 || kvs[0].Value != "from the db" {
		t.Fatalf("timeline from db = %v, %v", kvs, err)
	}

	// A database write (application write-around path) must reach the
	// cached timeline via notification.
	db.Put("p|bob|150", "fresh")
	db.Quiesce()
	deadline := time.Now().Add(2 * time.Second)
	for {
		v, found, _ := c.Get("t|ann|150|bob")
		if found && v == "fresh" {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("database notification did not reach the timeline")
		}
		time.Sleep(time.Millisecond)
	}

	// Database deletes propagate too.
	db.Delete("p|bob|100")
	db.Quiesce()
	deadline = time.Now().Add(2 * time.Second)
	for {
		if _, found, _ := c.Get("t|ann|100|bob"); !found {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("database delete did not reach the timeline")
		}
		time.Sleep(time.Millisecond)
	}
}

// TestDistributedSubscriptions runs the paper's §2.4 topology: base
// (home) servers absorb writes, a compute server executes the timeline
// join, fetching base data remotely with subscriptions.
func TestDistributedSubscriptions(t *testing.T) {
	// Two home servers partitioned on poster; one compute server.
	home0, err := New(Config{Name: "home0"})
	if err != nil {
		t.Fatal(err)
	}
	home1, err := New(Config{Name: "home1"})
	if err != nil {
		t.Fatal(err)
	}
	addr0, _ := home0.Start()
	addr1, _ := home1.Start()
	defer home0.Close()
	defer home1.Close()

	// Posters a..m on home0, n..z on home1 (for both p and s tables).
	pmap := partition.MustNew("p|n", "s|", "s|n")
	// Owners: [, p|n) -> 0, [p|n, s|) -> 1, [s|, s|n) -> 2, [s|n, ) -> 3.
	// Map owner index to address by taking owner%2 (p and s shard alike).
	addrs := []string{addr0, addr1, addr0, addr1}

	compute, err := New(Config{Name: "compute", Joins: timelineJoin})
	if err != nil {
		t.Fatal(err)
	}
	if err := compute.ConnectPeers(pmap, addrs, "p", "s"); err != nil {
		t.Fatal(err)
	}
	caddr, _ := compute.Start()
	defer compute.Close()

	h0, _ := client.Dial(addr0)
	h1, _ := client.Dial(addr1)
	cc, _ := client.Dial(caddr)
	defer h0.Close()
	defer h1.Close()
	defer cc.Close()

	// Writes go to home servers: posts partition by poster, subscriptions
	// by subscribing user (both of ann's subscriptions live on home0).
	h0.Put("s|ann|bob", "1")
	h0.Put("s|ann|zed", "1")
	h0.Put("p|bob|100", "bob's tweet")
	h1.Put("p|zed|150", "zed's tweet")

	// Timeline read at the compute server pulls from both homes.
	kvs, err := cc.Scan("t|ann|", "t|ann}", 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(kvs) != 2 || kvs[0].Key != "t|ann|100|bob" || kvs[1].Key != "t|ann|150|zed" {
		t.Fatalf("distributed timeline = %v", kvs)
	}

	// New posts at the home servers flow through subscriptions to the
	// compute server's materialized timeline (eventual consistency).
	h0.Put("p|bob|200", "more bob")
	deadline := time.Now().Add(2 * time.Second)
	for {
		v, found, _ := cc.Get("t|ann|200|bob")
		if found && v == "more bob" {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("subscription push did not arrive")
		}
		time.Sleep(time.Millisecond)
	}

	// Removals propagate as well.
	h1.Remove("p|zed|150")
	deadline = time.Now().Add(2 * time.Second)
	for {
		if _, found, _ := cc.Get("t|ann|150|zed"); !found {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("subscription removal did not arrive")
		}
		time.Sleep(time.Millisecond)
	}
}

func TestConnCloseCleansSubscriptions(t *testing.T) {
	s, c := startServer(t, Config{})
	c.Put("p|x|1", "v")
	// Subscribe via scan flag.
	m, err := c.ScanAsync("p|", "p}", 0, true).Wait()
	if err != nil || m.Status != rpc.StatusOK {
		t.Fatal(err)
	}
	s.smu.Lock()
	n := s.subs.Len()
	s.smu.Unlock()
	if n != 1 {
		t.Fatalf("subscriptions = %d", n)
	}
	c.Close()
	deadline := time.Now().Add(2 * time.Second)
	for {
		s.smu.Lock()
		n = s.subs.Len()
		s.smu.Unlock()
		if n == 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("subscription leaked after close")
		}
		time.Sleep(time.Millisecond)
	}
}

func TestNotifyAppliesChanges(t *testing.T) {
	_, c := startServer(t, Config{})
	f := c.NotifyAsync([]rpc.Change{
		{Op: rpc.ChangePut, Key: "n|1", Value: "a"},
		{Op: rpc.ChangePut, Key: "n|2", Value: "b"},
		{Op: rpc.ChangeRemove, Key: "n|1"},
	})
	_ = f // one-way: no reply
	deadline := time.Now().Add(2 * time.Second)
	for {
		_, found1, _ := c.Get("n|1")
		v2, found2, _ := c.Get("n|2")
		if !found1 && found2 && v2 == "b" {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("notify not applied: n|1 found=%v n|2=%q", found1, v2)
		}
		time.Sleep(time.Millisecond)
	}
}
