package server

import (
	"pequod/internal/backdb"
	"pequod/internal/core"
	"pequod/internal/keys"
	"pequod/internal/shard"
)

// AttachDB configures the server as a write-around cache over db (§2):
// the listed tables load on demand from the database, and the database
// pushes updates for loaded ranges back into the cache, keeping base data
// fresh without any application cache-maintenance code. Each shard loads
// and subscribes to the ranges it needs (its owned pieces for client
// reads, plus any source ranges its joins scan).
func (s *Server) AttachDB(db *backdb.DB, tables ...string) {
	s.pool.SetExternalTables(tables...)
	for i := 0; i < s.pool.NumShards(); i++ {
		sh := s.pool.Shard(i)
		sh.SetLoader(&dbLoader{sh: sh, db: db}, tables...)
	}
}

type dbLoader struct {
	sh *shard.Shard
	db *backdb.DB
}

// StartLoad implements core.BaseLoader over the database: snapshot +
// subscription are installed atomically, and both the snapshot and all
// later updates arrive through the database dispatcher in write order,
// so the cache never applies an old value over a newer one.
func (l *dbLoader) StartLoad(table string, r keys.Range) {
	sh := l.sh
	l.db.ScanAndSubscribe(r.Lo, r.Hi,
		func(kvs []core.KV) {
			sh.LoadComplete(table, r, kvs)
		},
		func(u backdb.Update) {
			op := core.OpPut
			if u.Op == backdb.OpDelete {
				op = core.OpRemove
			}
			sh.ApplyBatch([]core.Change{{Op: op, Key: u.Key, Value: u.Value}})
		})
}
