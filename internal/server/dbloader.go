package server

import (
	"pequod/internal/backdb"
	"pequod/internal/core"
	"pequod/internal/keys"
)

// AttachDB configures the server as a write-around cache over db (§2):
// the listed tables load on demand from the database, and the database
// pushes updates for loaded ranges back into the cache, keeping base data
// fresh without any application cache-maintenance code.
func (s *Server) AttachDB(db *backdb.DB, tables ...string) {
	s.e.SetLoader(&dbLoader{s: s, db: db}, tables...)
}

type dbLoader struct {
	s  *Server
	db *backdb.DB
}

// StartLoad implements core.BaseLoader over the database: snapshot +
// subscription are installed atomically, and both the snapshot and all
// later updates arrive through the database dispatcher in write order,
// so the cache never applies an old value over a newer one.
func (l *dbLoader) StartLoad(table string, r keys.Range) {
	s := l.s
	l.db.ScanAndSubscribe(r.Lo, r.Hi,
		func(kvs []core.KV) {
			s.mu.Lock()
			s.e.LoadComplete(table, r, kvs)
			s.loadCond.Broadcast()
			s.mu.Unlock()
		},
		func(u backdb.Update) {
			s.mu.Lock()
			if u.Op == backdb.OpDelete {
				s.e.Remove(u.Key)
			} else {
				s.e.Put(u.Key, u.Value)
			}
			s.loadCond.Broadcast()
			s.mu.Unlock()
		})
}
