package server

import (
	"encoding/json"
	"fmt"
	"testing"
	"time"

	"pequod/internal/client"
	"pequod/internal/core"
	"pequod/internal/partition"
)

// TestComputeServerEvictionRefetches exercises §2.5 in the distributed
// setting: a memory-limited compute server evicts computed timelines and
// cached base data under pressure, and later reads transparently refetch
// from the home server and recompute.
func TestComputeServerEvictionRefetches(t *testing.T) {
	home, err := New(Config{Name: "home"})
	if err != nil {
		t.Fatal(err)
	}
	haddr, _ := home.Start()
	defer home.Close()

	// The limit holds a handful of timelines plus hot base ranges (total
	// materialized state is ~700KB), forcing steady eviction without
	// starving any single scan.
	compute, err := New(Config{
		Name:   "compute",
		Joins:  timelineJoin,
		Engine: core.Options{MemLimit: 256 * 1024},
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := compute.ConnectPeers(partition.MustNew(), []string{haddr}, "p", "s"); err != nil {
		t.Fatal(err)
	}
	caddr, _ := compute.Start()
	defer compute.Close()

	hc, _ := client.Dial(haddr)
	cc, _ := client.Dial(caddr)
	defer hc.Close()
	defer cc.Close()

	// Enough users and posts to exceed the compute server's budget.
	const users, posts = 30, 40
	for u := 0; u < users; u++ {
		for p := 0; p < 3; p++ {
			if err := hc.Put(fmt.Sprintf("s|u%02d|a%02d", u, (u+p)%10), "1"); err != nil {
				t.Fatal(err)
			}
		}
	}
	for a := 0; a < 10; a++ {
		for i := 0; i < posts; i++ {
			if err := hc.Put(fmt.Sprintf("p|a%02d|%04d", a, i), "tweet body of reasonable length"); err != nil {
				t.Fatal(err)
			}
		}
	}

	// Materialize every timeline; the limit forces evictions.
	for u := 0; u < users; u++ {
		pfx := fmt.Sprintf("t|u%02d|", u)
		kvs, err := cc.Scan(pfx, pfx[:len(pfx)-1]+"}", 0)
		if err != nil {
			t.Fatal(err)
		}
		if len(kvs) != 3*posts {
			t.Fatalf("timeline u%02d = %d entries, want %d", u, len(kvs), 3*posts)
		}
	}

	stat, err := cc.Stat()
	if err != nil {
		t.Fatal(err)
	}
	var parsed struct {
		Stats core.Stats `json:"stats"`
	}
	if err := json.Unmarshal([]byte(stat), &parsed); err != nil {
		t.Fatal(err)
	}
	if parsed.Stats.Evictions == 0 {
		t.Fatalf("no evictions under 64KB limit: %s", stat)
	}

	// Evicted timelines recompute correctly (refetching base data from
	// the home server where needed).
	kvs, err := cc.Scan("t|u00|", "t|u00}", 0)
	if err != nil || len(kvs) != 3*posts {
		t.Fatalf("recomputed timeline = %d entries, %v", len(kvs), err)
	}

	// Fresh writes at the home still reach whatever is currently cached
	// (subscription or refetch — either way the answer is right).
	if err := hc.Put("p|a00|9999", "fresh"); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(2 * time.Second)
	for {
		kvs, err := cc.Scan("t|u00|9999", "t|u00}", 0)
		if err != nil {
			t.Fatal(err)
		}
		if len(kvs) == 1 && kvs[0].Value == "fresh" {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("fresh post never appeared after eviction churn")
		}
		time.Sleep(5 * time.Millisecond)
	}
}
