package server

// Durable store wiring: the write-behind hook that logs every
// owner-authoritative base write, the periodic snapshot loop, the meta
// persistence that lets a restarted member re-gate and re-wire itself,
// and the recovery path New runs before serving. All of it is inert —
// zero hot-path cost — unless Config.DataDir is set.
//
// Recovery ordering matters and is centralized here:
//
//  1. Replay snapshot+log into the recovered row set (durable.Recover).
//  2. Re-install the persisted join set (the configured joins first;
//     the recovered text must extend them, mirroring JoinCluster's
//     prefix rule, or the warm coverage is dropped).
//  3. Re-install the persisted gate, so a restarted member — including
//     a drained one — answers NotOwner with its last published bounds
//     from the first byte it serves.
//  4. Restore rows the member should still hold (its gate-owned ranges
//     plus its derived replica-held ranges), quietly, BEFORE the write
//     hook is set — restored rows must not be re-logged.
//  5. Set the write hook; from here every write is durable again.
//  6. Re-wire the mesh and replica assignment from meta; peers that are
//     still down are retried in the background.
//  7. Rebuild previously valid computed coverage — only once the mesh
//     is wired, so coverage is never marked valid over partial sources.

import (
	"log"
	"sort"
	"strings"
	"time"

	"pequod/internal/core"
	"pequod/internal/durable"
	"pequod/internal/keys"
	"pequod/internal/partition"
	"pequod/internal/rpc"
	"pequod/internal/shard"
)

// DefaultSnapshotInterval paces the periodic snapshot loop when the
// config leaves it zero.
const DefaultSnapshotInterval = 30 * time.Second

// DefaultScrubInterval and DefaultCompactInterval pace the durable
// store's background lineage scrub and log compaction when the config
// leaves them zero; a negative config value disables the loop.
const (
	DefaultScrubInterval   = time.Minute
	DefaultCompactInterval = 10 * time.Second
)

// recoveryStats records what the last startup recovered, surfaced
// through statJSON so tests and operators can verify a restart was
// warm (rows came from disk) rather than cold. Torn is the expected
// crash tail on the previously newest segment; CorruptSegments and
// CorruptSnapshots are mid-lineage damage — fsynced data lost — which
// health surfaces report distinctly.
type recoveryStats struct {
	SnapshotRows     int     `json:"snapshot_rows"`
	LogSegments      int     `json:"log_segments"`
	LogRecords       int     `json:"log_records"`
	RestoredRows     int     `json:"restored_rows"`
	RestoredWarm     int     `json:"restored_warm"`
	Torn             bool    `json:"torn,omitempty"`
	CorruptSegments  []int64 `json:"corrupt_segments,omitempty"`
	CorruptSnapshots []int64 `json:"corrupt_snapshots,omitempty"`
}

// durableStat is statJSON's durability block.
type durableStat struct {
	Dir string `json:"dir"`
	durable.Stats
	Recovery *recoveryStats `json:"recovery,omitempty"`
}

// durableHook is the pool change hook with durability on: log the
// change (write-behind — enqueue only, the shard lock is held), then
// forward to subscribers exactly as forwardChange would.
func (s *Server) durableHook(i int, c core.Change) {
	// Evictions drop a cached copy, not the data's validity (§2.5), and
	// join outputs are derived — both recompute at recovery, neither is
	// logged.
	if c.Op != core.OpEvict && !s.pool.JoinOutput(keys.Table(c.Key)) {
		if c.Op == core.OpRemove {
			s.dur.Append(durable.OpRemove, c.Key, "")
		} else {
			s.dur.Append(durable.OpPut, c.Key, c.Value)
		}
	}
	s.forwardChange(i, c)
}

// durableLogKVs logs rows that entered the pool without a change
// notification (a cluster splice installs silently); without this the
// destination of a migration would not own its new rows durably.
func (s *Server) durableLogKVs(kvs []rpc.KV) {
	if s.dur == nil {
		return
	}
	for _, kv := range kvs {
		if !s.pool.JoinOutput(keys.Table(kv.Key)) {
			s.dur.Append(durable.OpPut, kv.Key, kv.Value)
		}
	}
}

// snapshotDurable writes one durable snapshot of the pool's current
// state, returning the rows captured.
func (s *Server) snapshotDurable() (int64, error) {
	var rows int64
	err := s.dur.Snapshot(func(addKV func(k, v string), addWarm func(join int, lo, hi string)) error {
		s.pool.SnapshotDurable(func(k, v string) {
			rows++
			addKV(k, v)
		}, addWarm)
		return nil
	})
	return rows, err
}

// snapshotLoop drives periodic snapshots (and refreshes meta alongside
// them) until Close.
func (s *Server) snapshotLoop(every time.Duration) {
	defer close(s.durDone)
	t := time.NewTicker(every)
	defer t.Stop()
	for {
		select {
		case <-s.durStop:
			return
		case <-t.C:
			if _, err := s.snapshotDurable(); err != nil {
				log.Printf("pequod server %s: durable snapshot: %v", s.name, err)
			}
			s.persistMeta()
		}
	}
}

// persistMeta saves the member's current cluster position — gate,
// joins, mesh tables, replica assignment — to the durable store.
// Called after every control-plane event that changes any of them, and
// from the snapshot loop as a backstop. No-op without a data dir.
func (s *Server) persistMeta() {
	if s.dur == nil {
		return
	}
	if err := s.dur.SaveMeta(s.buildMeta()); err != nil {
		log.Printf("pequod server %s: persist meta: %v", s.name, err)
	}
}

// buildMeta snapshots the member's cluster position. Close captures it
// before tearing down the mesh and replica manager — persisting after
// teardown would erase the mesh record and leave a restarted compute
// member with no loader for its join sources.
func (s *Server) buildMeta() *durable.Meta {
	m := &durable.Meta{Name: s.name, ID: s.id, Joins: s.pool.InstalledText()}
	if g := s.pool.Gate(); g != nil {
		m.HasGate = true
		m.Epoch, m.Version = g.Map.Epoch(), g.Map.Version()
		m.Bounds, m.Peers = g.Map.Bounds(), g.Peers
		for i := 0; i < g.Map.Servers(); i++ {
			if g.Self[i] {
				m.Self = append(m.Self, i)
			}
		}
	}
	s.mmu.Lock()
	if s.mesh != nil {
		m.HasMesh = true
		for t := range s.mesh.tables {
			m.MeshTables = append(m.MeshTables, t)
		}
		sort.Strings(m.MeshTables)
	}
	s.mmu.Unlock()
	s.rmu.Lock()
	if s.repl != nil {
		if v := s.repl.view.Load(); v != nil {
			m.ReplicaCopies = v.copies
			m.ReplicaTables = append([]string(nil), v.tables...)
		}
	}
	s.rmu.Unlock()
	return m
}

// recoverDurable runs recovery steps 1-4 (see file comment): open the
// store, replay, re-install joins and gate, restore rows quietly. It
// returns the recovered meta (nil if none was ever saved) and the warm
// coverage still to rebuild once the mesh is wired.
func (s *Server) recoverDurable(cfg Config) (*durable.Meta, []core.WarmRange, error) {
	scrub := cfg.ScrubInterval
	if scrub == 0 {
		scrub = DefaultScrubInterval
	}
	compact := cfg.CompactInterval
	if compact == 0 {
		compact = DefaultCompactInterval
	}
	st, err := durable.OpenWith(cfg.DataDir, durable.Options{
		SyncEvery:    cfg.SyncInterval,
		ScrubEvery:   max(scrub, 0),
		CompactEvery: max(compact, 0),
	})
	if err != nil {
		return nil, nil, err
	}
	rec, err := st.Recover()
	if err != nil {
		st.Close()
		return nil, nil, err
	}
	if len(rec.CorruptSegments) > 0 || len(rec.CorruptSnapshots) > 0 {
		log.Printf("pequod server %s: recovery found mid-lineage corruption (segments %v, snapshots %v); serving what replayed — replicas and the mesh backfill the rest",
			s.name, rec.CorruptSegments, rec.CorruptSnapshots)
	}
	// An unreadable meta file costs warm gating/wiring, not data — the
	// rows and log are intact — so start ungated rather than refusing to
	// start at all.
	meta, ok, err := st.LoadMeta()
	if err != nil {
		log.Printf("pequod server %s: recovered meta unusable (%v); starting ungated", s.name, err)
		ok = false
	}
	if !ok {
		meta = nil
	}
	s.dur = st
	rs := &recoveryStats{
		SnapshotRows:     rec.SnapshotRows,
		LogSegments:      rec.LogSegments,
		LogRecords:       rec.LogRecords,
		Torn:             rec.Torn,
		CorruptSegments:  rec.CorruptSegments,
		CorruptSnapshots: rec.CorruptSnapshots,
	}
	s.recovery = rs
	warm := coreWarm(rec.Warm)

	// Joins: the recovered set must equal or extend the configured one
	// (the JoinCluster prefix rule); a conflicting set means the
	// operator reconfigured the server, so the configured joins win and
	// the recovered computed coverage — indexed against the old set —
	// is dropped. Rows are unaffected either way.
	if meta != nil && meta.Joins != "" {
		have := s.pool.InstalledText()
		text := meta.Joins
		switch {
		case text == have:
			text = ""
		case have == "":
			// install the whole recovered set
		case strings.HasPrefix(text, have+"\n"):
			text = text[len(have)+1:]
		default:
			log.Printf("pequod server %s: recovered join set conflicts with configured joins; recomputing coverage cold", s.name)
			text, warm = "", nil
		}
		if text != "" {
			if err := s.pool.InstallText(text); err != nil {
				log.Printf("pequod server %s: recovered join set no longer installs (%v); recomputing coverage cold", s.name, err)
				warm = nil
			}
		}
	}

	// Gate: re-install the last published map, so the member — drained
	// members included (Self empty) — answers with current bounds from
	// its first served byte.
	var g *shard.Gate
	if meta != nil && meta.HasGate {
		pmap, err := partition.NewEpochVersioned(meta.Epoch, meta.Version, meta.Bounds...)
		if err != nil || len(meta.Peers) != pmap.Servers() {
			log.Printf("pequod server %s: recovered cluster map unusable; starting ungated", s.name)
		} else {
			self := make(map[int]bool, len(meta.Self))
			for _, i := range meta.Self {
				self[i] = true
			}
			s.pool.ApplyMapUpdate(pmap, meta.Peers, self)
			g = s.pool.Gate()
		}
	}

	// Rows: restore what this member should still hold — everything if
	// it is not a cluster member, otherwise its gate-owned ranges plus
	// its derived replica-held ranges. Rows outside both linger on disk
	// only (they are the last-resort Repair rebuild source) and would
	// be stale to serve.
	keep := recoveredKeyFilter(g, meta)
	kept := make([]core.KV, 0, len(rec.KVs))
	for _, kv := range rec.KVs {
		if keep(kv.Key) {
			kept = append(kept, core.KV{Key: kv.Key, Value: kv.Value})
		}
	}
	rs.RestoredRows = s.pool.RestoreDurableParallel(kept)
	warm = clipWarm(warm, g)
	return meta, warm, nil
}

// wireRecovered runs recovery steps 6-7: mesh, replica assignment, and
// the warm rebuild. The write hook is already set, so everything from
// here is durable again. Mesh peers that have not come back yet (a
// whole-cluster restart) are retried in the background; the warm
// rebuild waits for the mesh, so coverage is never computed over
// partial sources.
func (s *Server) wireRecovered(meta *durable.Meta, warm []core.WarmRange) {
	if meta == nil {
		s.pool.RebuildWarm(warm)
		s.recovery.RestoredWarm = len(warm)
		return
	}
	var pmap *partition.Map
	if g := s.pool.Gate(); g != nil {
		pmap = g.Map
	}
	if meta.ReplicaCopies > 1 && pmap != nil {
		s.applyReplicaAssignment(pmap, meta.Peers, meta.Self, meta.ReplicaCopies, meta.ReplicaTables)
	}
	if !meta.HasMesh || pmap == nil {
		s.pool.RebuildWarm(warm)
		s.recovery.RestoredWarm = len(warm)
		return
	}
	if err := s.ConnectMesh(pmap, meta.Peers, meta.Self, meta.MeshTables...); err != nil {
		log.Printf("pequod server %s: mesh rewire after restart: %v (retrying in background)", s.name, err)
		go s.retryMesh(meta, warm)
		return
	}
	s.pool.RebuildWarm(warm)
	s.recovery.RestoredWarm = len(warm)
}

// retryMesh keeps attempting the post-restart mesh rewire until it
// lands or the server closes — a whole-cluster restart converges as
// soon as enough peers are back to dial.
func (s *Server) retryMesh(meta *durable.Meta, warm []core.WarmRange) {
	t := time.NewTicker(500 * time.Millisecond)
	defer t.Stop()
	for {
		select {
		case <-s.durStop:
			return
		case <-t.C:
		}
		g := s.pool.Gate()
		if g == nil {
			return
		}
		if err := s.ConnectMesh(g.Map, meta.Peers, meta.Self, meta.MeshTables...); err != nil {
			continue
		}
		s.pool.RebuildWarm(warm)
		s.recovery.RestoredWarm = len(warm)
		return
	}
}

// recoveredKeyFilter decides which recovered rows a member restores
// into memory. Without a gate everything is local data. With one, the
// member restores rows it serves (gate-owned) and rows it holds as a
// replica for peers — derived from the persisted assignment with the
// same ring walk the replica manager uses, so the two can never
// disagree. The restored replica copies are promotion-warm immediately
// and the re-applied assignment re-syncs them against their homes
// (ghost rows and staleness are the sync's problem, exactly as after a
// home restart).
func recoveredKeyFilter(g *shard.Gate, meta *durable.Meta) func(key string) bool {
	if g == nil {
		return func(string) bool { return true }
	}
	var reps []keys.Range
	if meta != nil && meta.ReplicaCopies > 1 && len(meta.Peers) == g.Map.Servers() {
		self := selfAddrs(meta.Peers, meta.Self)
		for o := 0; o < g.Map.Servers(); o++ {
			home := meta.Peers[o]
			if self[home] {
				continue
			}
			for _, a := range partition.ReplicaAddrs(meta.Peers, o, meta.ReplicaCopies) {
				if self[a] {
					reps = append(reps, subRanges(ownerRange(g.Map, o), meta.ReplicaTables)...)
					break
				}
			}
		}
	}
	return func(key string) bool {
		if g.OwnsKey(key) {
			return true
		}
		for _, r := range reps {
			if r.Contains(key) {
				return true
			}
		}
		return false
	}
}

// clipWarm restricts recovered warm coverage to the ranges the gate
// says this member serves — coverage over ranges owned elsewhere would
// be recomputed only to be dropped.
func clipWarm(ws []core.WarmRange, g *shard.Gate) []core.WarmRange {
	if g == nil || len(ws) == 0 {
		return ws
	}
	var out []core.WarmRange
	for _, w := range ws {
		for _, pc := range g.Map.Split(w.R) {
			if g.Self[pc.Owner] && !pc.R.Empty() {
				out = append(out, core.WarmRange{Join: w.Join, R: pc.R})
			}
		}
	}
	return out
}

// coreWarm converts durable warm entries to the engine's form.
func coreWarm(ws []durable.Warm) []core.WarmRange {
	out := make([]core.WarmRange, 0, len(ws))
	for _, w := range ws {
		out = append(out, core.WarmRange{Join: w.Join, R: keys.Range{Lo: w.Lo, Hi: w.Hi}})
	}
	return out
}

// handleSnapshot serves MsgSnapshot: force one durable snapshot now.
func (s *Server) handleSnapshot(m *rpc.Message) *rpc.Message {
	if s.dur == nil {
		return rpc.ErrReply(m.Seq, errNoDataDir)
	}
	rows, err := s.snapshotDurable()
	if err != nil {
		return rpc.ErrReply(m.Seq, err)
	}
	s.persistMeta()
	r := rpc.OKReply(m.Seq)
	r.Count = rows
	return r
}

// handleRebuildRange serves MsgRebuildRange, the last-resort repair
// path: replay this member's own durable lineage restricted to the
// range and restore whatever final rows it still holds — replica
// copies from an earlier assignment, rows from an earlier ownership
// stint — installing only keys absent from memory, so writes accepted
// since the promotion always win over older disk state.
func (s *Server) handleRebuildRange(m *rpc.Message) *rpc.Message {
	if s.dur == nil {
		return rpc.ErrReply(m.Seq, errNoDataDir)
	}
	kvs, err := s.dur.ReadRange(m.Lo, m.Hi)
	if err != nil {
		return rpc.ErrReply(m.Seq, err)
	}
	restore := make([]core.KV, 0, len(kvs))
	for _, kv := range kvs {
		if !s.pool.JoinOutput(keys.Table(kv.Key)) {
			restore = append(restore, core.KV{Key: kv.Key, Value: kv.Value})
		}
	}
	n := s.pool.RestoreDurable(restore)
	r := rpc.OKReply(m.Seq)
	r.Count = int64(n)
	return r
}

var errNoDataDir = &replError{"no data dir configured; durability is off"}
