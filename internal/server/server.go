// Package server implements the networked Pequod cache server: the RPC
// surface over a sharded pool of core engines, cross-server base-data
// subscriptions with asynchronous update notification (§2.4), and
// remote/database loaders that drive the engines' restart contexts
// (§3.3).
//
// Concurrency model: each engine is single-writer like the paper's
// event-driven server, but the server hosts Config.Shards of them,
// partitioned by key range (internal/shard). Requests lock only the
// shard owning their key; cross-shard scans fan out concurrently, so a
// multi-core machine serves reads from all cores instead of behind one
// global mutex. Per-connection goroutines handle framing, and
// per-connection notifier goroutines drain subscription pushes so slow
// subscribers never block an engine.
package server

import (
	"bufio"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"log"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"pequod/internal/client"
	"pequod/internal/core"
	"pequod/internal/durable"
	"pequod/internal/interval"
	"pequod/internal/keys"
	"pequod/internal/partition"
	"pequod/internal/rpc"
	"pequod/internal/shard"
)

// Config configures a Server.
type Config struct {
	// Name identifies the server in logs/stats.
	Name string
	// ID is the server's durable identity — stable across restarts and
	// address changes, surfaced through the stat RPC so coordinators
	// and operators can tell a restarted member from a fresh one.
	// Defaults to Name.
	ID string
	// Engine options (optimization toggles, memory limit). A MemLimit is
	// split evenly across the shards.
	Engine core.Options
	// Joins, if non-empty, is installed at startup.
	Joins string
	// SubtableDepths configures §4.1 boundaries at startup.
	SubtableDepths map[string]int
	// Shards is the number of in-process engines (default 1). Serving
	// scales with shards when Bounds matches the workload's key
	// distribution.
	Shards int
	// Bounds are the partition split points between shards
	// (len = Shards-1); see shard.Config.
	Bounds []string
	// Rebalance, when non-nil, enables load-aware shard rebalancing:
	// hot key ranges migrate live between neighboring shards, so the
	// initial Bounds need not anticipate the workload's skew. See
	// shard.Rebalance for the knobs.
	Rebalance *shard.Rebalance
	// DataDir, if non-empty, enables the durable range store: base
	// writes stream to a write-behind log under this directory,
	// periodic snapshots truncate it, and a restart recovers rows, the
	// cluster gate, and mesh wiring from disk before serving. Empty
	// (the default) keeps the server purely in-memory with zero
	// durability cost. See internal/durable and DESIGN.md §Durability.
	DataDir string
	// SyncInterval paces the write-behind log's batched fsync
	// (default durable.DefaultSyncInterval). Writes acknowledge from
	// memory; this bounds how much acknowledged data a crash can lose.
	SyncInterval time.Duration
	// SnapshotInterval paces periodic durable snapshots (default
	// DefaultSnapshotInterval). Shorter intervals bound log replay at
	// restart; longer ones reduce background I/O.
	SnapshotInterval time.Duration
	// ScrubInterval paces the background CRC scrub of the committed
	// durable lineage (default DefaultScrubInterval; negative disables).
	// The scrub surfaces mid-lineage corruption through stats and
	// health while replicas that could repair it still exist.
	ScrubInterval time.Duration
	// CompactInterval paces durable log compaction between snapshots
	// (default DefaultCompactInterval; negative disables): sealed
	// segments dominated by dead overwrites are rewritten without them,
	// bounding restart replay on write-heavy ranges.
	CompactInterval time.Duration
}

// subscription is a cross-server base-data subscription (§2.4): the
// paper's "H installs a subscription for S to k"; ours are range-level,
// installed by Scan requests carrying the subscribe flag.
type subscription struct {
	cn *conn
	r  keys.Range
}

// Server is one Pequod cache server.
type Server struct {
	name string
	id   string

	pool *shard.Pool

	smu   sync.Mutex // guards subs and conn.subEntries
	subs  *interval.Tree[*subscription]
	nsubs atomic.Int64 // == subs.Len(); lock-free no-subscriber fast path

	ln     net.Listener
	connWG sync.WaitGroup
	cmu    sync.Mutex
	conns  map[*conn]struct{}
	closed bool

	// Distributed mode: the mesh wiring installed by ConnectMesh or a
	// JoinCluster RPC (guarded by mmu).
	mmu  sync.Mutex
	mesh *meshState

	// Replica assignment installed by MsgReplicate (guarded by rmu);
	// nil until a coordinator publishes one. See replica.go.
	rmu  sync.Mutex
	repl *replicaState

	// Durable range store (nil without Config.DataDir); see
	// durability.go. recovery is written once in New, before serving.
	dur      *durable.Store
	durStop  chan struct{}
	durDone  chan struct{}
	recovery *recoveryStats
}

// meshState records a server's position in a partitioned mesh so later
// ConnectMesh calls (a join installed at runtime adding source tables)
// can reuse the dialed peer connections. view is the mesh's current
// cluster partition — map, member address per owner index, and the
// addresses that are this process — shared with every loader and
// atomically replaced when a live migration or membership change
// publishes a successor. Peer connections are keyed by *address* (one
// per shard per peer), so they survive owner indexes shifting when a
// member joins or drains; adoptMeshView resizes the connection set when
// the member list itself changes.
type meshState struct {
	view    atomic.Pointer[meshView]
	loaders []*remoteLoader // one per shard
	tables  map[string]bool

	// Watchdog lifecycle (meshWatch): retires failed peer connections
	// and invalidates the coverage loaded over them, so a peer that
	// restarted in place — same address, new process, dead
	// subscriptions — is re-fetched and re-subscribed instead of served
	// stale forever. stop/done are nil for a mesh that failed wiring
	// before the watchdog started.
	stop     chan struct{}
	stopOnce sync.Once
	done     chan struct{}
}

// meshView is one generation of the mesh's cluster view.
type meshView struct {
	pmap  *partition.Map
	addrs []string        // serving address per owner index
	self  map[string]bool // addresses that are this process
}

// ownerAddr returns the serving address for key under this view.
func (v *meshView) ownerAddr(key string) string { return v.addrs[v.pmap.Owner(key)] }

// selfAddrs derives the address set {addrs[i] : i in self}.
func selfAddrs(addrs []string, self []int) map[string]bool {
	out := make(map[string]bool, len(self))
	for _, i := range self {
		if i >= 0 && i < len(addrs) {
			out[addrs[i]] = true
		}
	}
	return out
}

// New creates a server.
func New(cfg Config) (*Server, error) {
	pool, err := shard.New(shard.Config{
		Shards:    cfg.Shards,
		Bounds:    cfg.Bounds,
		Engine:    cfg.Engine,
		Rebalance: cfg.Rebalance,
	})
	if err != nil {
		return nil, err
	}
	s := &Server{
		name:  cfg.Name,
		id:    cfg.ID,
		pool:  pool,
		subs:  interval.New[*subscription](),
		conns: make(map[*conn]struct{}),
	}
	if s.id == "" {
		s.id = cfg.Name
	}
	for t, d := range cfg.SubtableDepths {
		pool.SetSubtableDepth(t, d)
	}
	if cfg.Joins != "" {
		if err := pool.InstallText(cfg.Joins); err != nil {
			pool.Close()
			return nil, err
		}
	}
	if cfg.DataDir == "" {
		pool.SetHook(s.forwardChange)
		return s, nil
	}
	// Durable mode: recover rows/gate/joins from disk quietly, then set
	// the (logging) hook, then re-wire mesh and replicas — the ordering
	// contract is documented in durability.go.
	meta, warm, err := s.recoverDurable(cfg)
	if err != nil {
		pool.Close()
		return nil, err
	}
	s.durStop = make(chan struct{})
	s.durDone = make(chan struct{})
	pool.SetHook(s.durableHook)
	s.wireRecovered(meta, warm)
	s.persistMeta()
	every := cfg.SnapshotInterval
	if every <= 0 {
		every = DefaultSnapshotInterval
	}
	go s.snapshotLoop(every)
	return s, nil
}

// Pool exposes the shard pool for embedded use (stats, tests, warm-up).
func (s *Server) Pool() *shard.Pool { return s.pool }

// Bytes returns the approximate memory footprint across all shards.
func (s *Server) Bytes() int64 { return s.pool.Bytes() }

// forwardChange pushes an owner-authoritative change to subscribed
// peers. Called with the owning shard's lock held (from inside engine
// mutation), so it only enqueues.
func (s *Server) forwardChange(_ int, c core.Change) {
	if c.Op == core.OpEvict {
		// Eviction drops this server's cache, not the data's validity;
		// replicas keep their copies (§2.5).
		return
	}
	if s.nsubs.Load() == 0 {
		// No subscribers: skip the subscription tree entirely so shards'
		// write paths don't re-serialize on one mutex. A subscription
		// racing in here was installed after this change's snapshot
		// scan, which already included the change.
		return
	}
	s.smu.Lock()
	defer s.smu.Unlock()
	op := rpc.ChangePut
	if c.Op == core.OpRemove {
		op = rpc.ChangeRemove
	}
	s.subs.Stab(c.Key, func(en *interval.Entry[*subscription]) bool {
		en.Val.cn.pushNotify(rpc.Change{Op: op, Key: c.Key, Value: c.Value})
		return true
	})
}

// ListenAndServe listens on addr and serves until Close.
func (s *Server) ListenAndServe(addr string) error {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	return s.Serve(ln)
}

// Serve accepts connections on ln until Close.
func (s *Server) Serve(ln net.Listener) error {
	s.cmu.Lock()
	if s.closed {
		s.cmu.Unlock()
		return errors.New("pequod server: closed")
	}
	s.ln = ln
	s.cmu.Unlock()
	for {
		c, err := ln.Accept()
		if err != nil {
			s.cmu.Lock()
			closed := s.closed
			s.cmu.Unlock()
			if closed {
				return nil
			}
			return err
		}
		cn := newConn(s, c)
		s.cmu.Lock()
		s.conns[cn] = struct{}{}
		s.cmu.Unlock()
		s.connWG.Add(1)
		go cn.serve()
	}
}

// Start listens on a free loopback port and serves in the background,
// returning the address (test/bench convenience).
func (s *Server) Start() (string, error) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return "", err
	}
	go s.Serve(ln)
	return ln.Addr().String(), nil
}

// Close stops the listener, all connections, and the shard pool.
func (s *Server) Close() {
	s.cmu.Lock()
	if s.closed {
		s.cmu.Unlock()
		return
	}
	s.closed = true
	ln := s.ln
	conns := make([]*conn, 0, len(s.conns))
	for cn := range s.conns {
		conns = append(conns, cn)
	}
	s.cmu.Unlock()
	if ln != nil {
		ln.Close()
	}
	for _, cn := range conns {
		cn.close()
	}
	s.connWG.Wait()
	// Snapshot the cluster position now, while the mesh and replica
	// assignment are still live: the meta persisted at close is what a
	// warm restart rewires from, and capturing it after the teardown
	// below would record HasMesh=false — leaving the restarted member's
	// join sources loader-less (cold compute would silently serve empty
	// ranges).
	var finalMeta *durable.Meta
	if s.dur != nil {
		finalMeta = s.buildMeta()
	}
	s.mmu.Lock()
	mesh := s.mesh
	s.mesh = nil
	s.mmu.Unlock()
	if mesh != nil {
		mesh.closeAll()
		if mesh.done != nil {
			// The watchdog may be mid-tick against the pool; it must be
			// gone before pool.Close below.
			<-mesh.done
		}
	}
	s.rmu.Lock()
	repl := s.repl
	s.repl = nil
	s.rmu.Unlock()
	if repl != nil {
		repl.closeAll()
	}
	if s.dur != nil {
		// Stop the snapshot loop, persist the final cluster position (a
		// drained member's post-drain map must survive restart; the
		// pre-teardown snapshot keeps the mesh and replica record), flush
		// the tail of the log, and let go of the directory.
		close(s.durStop)
		<-s.durDone
		if err := s.dur.SaveMeta(finalMeta); err != nil {
			log.Printf("pequod server %s: persist meta: %v", s.name, err)
		}
		if err := s.dur.Close(); err != nil {
			log.Printf("pequod server %s: durable close: %v", s.name, err)
		}
	}
	s.pool.Close()
}

// dropConn unregisters a closed connection and its subscriptions.
func (s *Server) dropConn(cn *conn) {
	s.cmu.Lock()
	delete(s.conns, cn)
	s.cmu.Unlock()
	s.smu.Lock()
	for _, en := range cn.subEntries {
		s.subs.Delete(en)
	}
	s.nsubs.Add(int64(-len(cn.subEntries)))
	cn.subEntries = nil
	s.smu.Unlock()
}

// statJSON renders server statistics aggregated across shards, plus the
// rebalancer's view of the partition (migrations run, current bounds,
// per-shard load), the server's cumulative load snapshot (a cluster
// rebalancer polls it to find hot servers and pick split points), and —
// on cluster members — the published cluster map this server serves
// under.
func (s *Server) statJSON() string {
	snap := struct {
		Name      string               `json:"name"`
		ID        string               `json:"id,omitempty"`
		Shards    int                  `json:"shards"`
		Entries   int                  `json:"entries"`
		Bytes     int64                `json:"bytes"`
		Stats     core.Stats           `json:"stats"`
		Rebalance shard.RebalanceStats `json:"rebalance"`
		Load      shard.LoadInfo       `json:"load"`
		Joins     string               `json:"joins,omitempty"`
		Staleness staleStat            `json:"staleness"`
		Cluster   *clusterStat         `json:"cluster,omitempty"`
		Durable   *durableStat         `json:"durable,omitempty"`
	}{
		Name: s.name, ID: s.id, Shards: s.pool.NumShards(), Entries: s.pool.Len(),
		Bytes: s.pool.Bytes(), Stats: s.pool.Stats(),
		Rebalance: s.pool.RebalanceStats(), Load: s.pool.LoadInfo(),
		Staleness: s.staleStat(),
		// The installed join set travels in stats so a coordinator that
		// did not install the joins itself (a fresh pequod-cli run) can
		// still replay them onto a joining member.
		Joins: s.pool.InstalledText(),
	}
	if g := s.pool.Gate(); g != nil {
		cs := &clusterStat{
			Epoch: g.Map.Epoch(), Version: g.Map.Version(),
			Bounds: g.Map.Bounds(), Peers: g.Peers,
			Retained: s.pool.RetainedStats().Entries,
		}
		s.rmu.Lock()
		if s.repl != nil {
			cs.Replicas = s.repl.snapshot()
		}
		s.rmu.Unlock()
		for i := 0; i < g.Map.Servers(); i++ {
			if g.Self[i] {
				cs.Self = append(cs.Self, i)
			}
		}
		snap.Cluster = cs
	}
	if s.dur != nil {
		snap.Durable = &durableStat{
			Dir:      s.dur.Dir(),
			Stats:    s.dur.Stats(),
			Recovery: s.recovery,
		}
	}
	out, _ := json.Marshal(snap)
	return string(out)
}

// staleStat is the stat RPC's view of this member's staleness debt: the
// forwarded-write queue lag and the deferred-maintenance backlog
// (unapplied lazy logs plus dirty sub-intervals) that bounded reads
// trade against their budget. Operators compare lag_us against the
// budgets clients carry — a member whose lag exceeds every budget in
// use serves only fresh-path reads and gets none of the latency win.
type staleStat struct {
	LagUS      int64 `json:"lag_us"`      // max forwarded-write queue lag across shards
	DebtSpans  int   `json:"debt_spans"`  // deferred-maintenance spans (dirty + lazy logs)
	DebtOldUS  int64 `json:"debt_old_us"` // age of the oldest deferred maintenance (incl. queue lag)
	BoundedSrv int64 `json:"bounded_srv"` // reads served within a staleness budget
	PartialInv int64 `json:"partial_inv"` // range-granular (sub-interval) invalidations
	DirtyRecmp int64 `json:"dirty_recmp"` // dirty sub-interval recomputes
}

func (s *Server) staleStat() staleStat {
	spans, oldest := s.pool.StalenessDebt()
	st := s.pool.Stats()
	return staleStat{
		LagUS:      s.pool.MaxLag(time.Now()).Microseconds(),
		DebtSpans:  spans,
		DebtOldUS:  oldest.Microseconds(),
		BoundedSrv: st.BoundedStaleServes,
		PartialInv: st.PartialInvalidations,
		DirtyRecmp: st.DirtyRecomputes,
	}
}

// clusterStat is the stat RPC's view of a member's cluster position:
// the published map it serves under (position, bounds, member
// addresses), the owner indexes that are this process, and how many
// extracted-but-unconfirmed range copies it retains (non-zero outside a
// migration window means a stranded transfer — see docs/OPERATIONS.md).
type clusterStat struct {
	Epoch    int64    `json:"epoch"`
	Version  int64    `json:"version"`
	Bounds   []string `json:"bounds"`
	Peers    []string `json:"peers,omitempty"`
	Self     []int    `json:"self"`
	Retained int      `json:"retained"`
	Replicas int      `json:"replicas,omitempty"` // replica ranges held for peers
}

// handle processes one request message, returning the reply (nil for
// one-way messages). Blocking on outstanding base-data loads (§3.3)
// happens inside the pool, per shard; a request carrying a deadline
// budget (TimeoutMS) bounds that blocking and gets an error reply
// instead of holding a doomed request open.
func (s *Server) handle(cn *conn, m *rpc.Message) *rpc.Message {
	var dl time.Time // zero = no deadline
	if m.TimeoutMS > 0 {
		dl = time.Now().Add(time.Duration(m.TimeoutMS) * time.Millisecond)
	}
	// Staleness budget for bounded reads (0 = fully fresh). Decoded once
	// here; only the read handlers below consume it.
	maxStale := time.Duration(m.StaleMS) * time.Millisecond
	switch m.Type {
	case rpc.MsgGet:
		v, found, err := s.pool.GetBounded(m.Key, maxStale, dl)
		if err != nil {
			return errReply(m.Seq, err)
		}
		r := rpc.OKReply(m.Seq)
		r.Value, r.Found = v, found
		return r

	case rpc.MsgPut:
		if err := s.pool.PutGated(m.Key, m.Value); err != nil {
			return errReply(m.Seq, err)
		}
		return rpc.OKReply(m.Seq)

	case rpc.MsgRemove:
		found, err := s.pool.RemoveGated(m.Key)
		if err != nil {
			return errReply(m.Seq, err)
		}
		r := rpc.OKReply(m.Seq)
		r.Found = found
		return r

	case rpc.MsgScan:
		var sub func(int, keys.Range)
		if m.SubscribeFlag {
			// Install one subscription per shard piece, while that
			// piece's shard lock is still held: the snapshot the scan
			// returned and the subscription's update stream meet with no
			// gap (§2.4's atomic snapshot+subscribe).
			sub = func(_ int, r keys.Range) {
				s.smu.Lock()
				en := s.subs.Insert(r.Lo, r.Hi, &subscription{cn: cn, r: r})
				cn.subEntries = append(cn.subEntries, en)
				s.smu.Unlock()
				// Published while the piece's shard lock is still held,
				// so the owning shard's next change sees the subscriber
				// (forwardChange's fast path reads this without smu).
				s.nsubs.Add(1)
			}
		}
		kvs, err := s.pool.ScanBounded(m.Lo, m.Hi, m.Limit, cn.kvBuf, sub, maxStale, dl)
		if err != nil {
			return errReply(m.Seq, err)
		}
		cn.kvBuf = kvs // reuse capacity on the next request
		r := rpc.OKReply(m.Seq)
		r.KVs = kvs // rpc.KV aliases core.KV; no per-element conversion
		return r

	case rpc.MsgCount:
		n, err := s.pool.CountBounded(m.Lo, m.Hi, maxStale, dl)
		if err != nil {
			return errReply(m.Seq, err)
		}
		r := rpc.OKReply(m.Seq)
		r.Count = int64(n)
		return r

	case rpc.MsgAddJoin:
		if err := s.pool.InstallText(m.Text); err != nil {
			return rpc.ErrReply(m.Seq, err)
		}
		s.persistMeta()
		return rpc.OKReply(m.Seq)

	case rpc.MsgNotify:
		// Change batch from a peer (home-server subscription push) or
		// from a write-around database feed: apply as base writes.
		s.ApplyChanges(m.Changes)
		return nil // one-way

	case rpc.MsgStat:
		r := rpc.OKReply(m.Seq)
		r.Value = s.statJSON()
		return r

	case rpc.MsgFlush:
		return rpc.ErrReply(m.Seq, errors.New("flush unsupported; restart the server"))

	case rpc.MsgSetSubtable:
		s.pool.SetSubtableDepth(m.Table, m.Depth)
		return rpc.OKReply(m.Seq)

	case rpc.MsgQuiesce:
		if err := s.quiesce(dl); err != nil {
			return rpc.ErrReply(m.Seq, err)
		}
		return rpc.OKReply(m.Seq)

	case rpc.MsgPing:
		// Drain this connection's queued subscription pushes before
		// replying: the reply then fences delivery — every push enqueued
		// before the ping was handled precedes it in the stream.
		if !cn.drainNotify(dl) {
			return rpc.ErrReply(m.Seq, errDrainDeadline)
		}
		return rpc.OKReply(m.Seq)

	case rpc.MsgConnectPeers:
		pmap, err := partition.New(m.Bounds...)
		if err != nil {
			return rpc.ErrReply(m.Seq, err)
		}
		if len(m.Peers) != pmap.Servers() {
			return rpc.ErrReply(m.Seq, fmt.Errorf("pequod server: %d bounds need %d peers, have %d",
				len(m.Bounds), pmap.Servers(), len(m.Peers)))
		}
		if err := s.ConnectMesh(pmap, m.Peers, m.Self, m.Tables...); err != nil {
			return rpc.ErrReply(m.Seq, err)
		}
		s.persistMeta()
		return rpc.OKReply(m.Seq)

	case rpc.MsgExtractRange:
		return s.handleExtractRange(m)

	case rpc.MsgSpliceRange:
		return s.handleSpliceRange(m, dl)

	case rpc.MsgMapUpdate:
		return s.handleMapUpdate(m, dl)

	case rpc.MsgJoinCluster:
		return s.handleJoinCluster(m)

	case rpc.MsgDrain:
		return s.handleDrain(m)

	case rpc.MsgReplicate:
		r := s.handleReplicate(m)
		s.persistMeta()
		return r

	case rpc.MsgSnapshot:
		return s.handleSnapshot(m)

	case rpc.MsgRebuildRange:
		return s.handleRebuildRange(m)
	}
	return rpc.ErrReply(m.Seq, errors.New("unknown request"))
}

// errReply maps an error onto the wire: cluster-ownership failures
// become StatusNotOwner replies carrying the server's current map, so
// clients re-route and retry instead of failing.
func errReply(seq uint64, err error) *rpc.Message {
	var noe *shard.NotOwnerError
	if errors.As(err, &noe) {
		return rpc.NotOwnerReply(seq, noe.Epoch, noe.Version, noe.Bounds, noe.Peers)
	}
	return rpc.ErrReply(seq, err)
}

// errDrainDeadline reports a quiesce/ping that could not flush pushes
// in time — typically a subscriber that has stopped reading its socket.
var errDrainDeadline = errors.New("pequod server: deadline exceeded draining subscription pushes")

// quiesce settles replication visible to this server: in-process shard
// forwarding, outbound subscription pushes (drained into the sockets),
// and inbound pushes from upstream peers (fenced by pinging each peer —
// the ping reply follows any pushes the peer had queued for us, and our
// reader applies pushes in order). After it returns nil, reads here see
// every write acknowledged before the quiesce request. A deadline
// bounds the socket drains and peer fences (a subscriber that stopped
// reading would otherwise wedge quiesce forever); the in-process
// pool.Quiesce is not network-dependent and settles on its own.
func (s *Server) quiesce(dl time.Time) error {
	s.pool.Quiesce()
	s.cmu.Lock()
	conns := make([]*conn, 0, len(s.conns))
	for cn := range s.conns {
		conns = append(conns, cn)
	}
	s.cmu.Unlock()
	for _, cn := range conns {
		if !cn.drainNotify(dl) {
			return errDrainDeadline
		}
	}
	s.mmu.Lock()
	var peers []*client.Client
	if s.mesh != nil {
		peers = s.mesh.allConns()
	}
	s.mmu.Unlock()
	s.rmu.Lock()
	if s.repl != nil {
		// Replica homes are upstream peers too: fencing them makes the
		// post-quiesce replica copies complete, the property failover
		// promotion relies on.
		peers = append(peers, s.repl.upstreamConns()...)
	}
	s.rmu.Unlock()
	ctx := context.Background()
	if !dl.IsZero() {
		var cancel context.CancelFunc
		ctx, cancel = context.WithDeadline(ctx, dl)
		defer cancel()
	}
	for _, p := range peers {
		// A transport error means a dead peer, which cannot owe us
		// pushes; a context error means the deadline cut the fence
		// short, which quiesce must report.
		if err := p.Ping(ctx); err != nil && ctx.Err() != nil {
			return ctx.Err()
		}
	}
	s.pool.Quiesce()
	return nil
}

// ApplyChanges applies replicated changes to their owning shards
// (thread-safe).
func (s *Server) ApplyChanges(changes []rpc.Change) {
	s.pool.Apply(coreChanges(changes))
}

// coreChanges converts wire changes to engine changes.
func coreChanges(changes []rpc.Change) []core.Change {
	out := make([]core.Change, len(changes))
	for i, c := range changes {
		op := core.OpPut
		if c.Op == rpc.ChangeRemove {
			op = core.OpRemove
		}
		out[i] = core.Change{Op: op, Key: c.Key, Value: c.Value}
	}
	return out
}

// --- connection ---

type conn struct {
	s  *Server
	c  net.Conn
	bw *bufio.Writer

	wmu     sync.Mutex // guards bw
	scratch []byte

	// Scan result buffer, reused across this connection's requests:
	// request handling is sequential per connection and the reply is
	// fully encoded before the next request is read, so reuse is safe
	// (the reply aliases it directly — rpc.KV is core.KV).
	kvBuf []core.KV

	// notify queue drained by the notifier goroutine; nbusy marks a
	// batch mid-write so drainNotify can wait for bytes to reach the
	// socket, not just the queue to empty
	nmu     sync.Mutex
	ncond   *sync.Cond
	nqueue  []rpc.Change
	nbusy   bool
	nclosed bool

	subEntries []*interval.Entry[*subscription] // guarded by s.smu
}

func newConn(s *Server, c net.Conn) *conn {
	cn := &conn{s: s, c: c, bw: bufio.NewWriterSize(c, 64<<10)}
	cn.ncond = sync.NewCond(&cn.nmu)
	return cn
}

func (cn *conn) serve() {
	defer cn.s.connWG.Done()
	defer cn.s.dropConn(cn)
	defer cn.close()
	go cn.notifyLoop()
	br := bufio.NewReaderSize(cn.c, 64<<10)
	var scratch []byte
	for {
		m, sc, err := rpc.ReadMessage(br, scratch)
		if err != nil {
			return
		}
		scratch = sc
		if r := cn.s.handle(cn, m); r != nil {
			// Batch flushes across pipelined requests: only force bytes
			// out when the input buffer has drained, so a burst of
			// pipelined requests costs one write syscall, not one per
			// reply.
			if err := cn.write(r, br.Buffered() == 0); err != nil {
				return
			}
		}
	}
}

// write sends a frame, flushing when requested (end of a pipelined
// burst) — the notifier goroutine always flushes its own pushes.
func (cn *conn) write(m *rpc.Message, flush bool) error {
	cn.wmu.Lock()
	defer cn.wmu.Unlock()
	var err error
	cn.scratch, err = rpc.WriteMessage(cn.bw, m, cn.scratch)
	if err != nil {
		return err
	}
	if flush {
		return cn.bw.Flush()
	}
	return nil
}

// pushNotify enqueues a subscription push (called with a shard lock
// held; must not block). Broadcast, not Signal: the cond is shared with
// drainNotify waiters, and a Signal could wake one of those instead of
// the notifier goroutine.
func (cn *conn) pushNotify(c rpc.Change) {
	cn.nmu.Lock()
	cn.nqueue = append(cn.nqueue, c)
	cn.nmu.Unlock()
	cn.ncond.Broadcast()
}

// notifyLoop drains the notify queue into batched MsgNotify frames —
// asynchronous update propagation, the source of Pequod's eventual
// consistency (§2.4).
func (cn *conn) notifyLoop() {
	for {
		cn.nmu.Lock()
		for len(cn.nqueue) == 0 && !cn.nclosed {
			cn.ncond.Wait()
		}
		if cn.nclosed && len(cn.nqueue) == 0 {
			cn.nmu.Unlock()
			return
		}
		batch := cn.nqueue
		cn.nqueue = nil
		cn.nbusy = true
		cn.nmu.Unlock()
		err := cn.write(&rpc.Message{Type: rpc.MsgNotify, Changes: batch}, true)
		cn.nmu.Lock()
		cn.nbusy = false
		cn.nmu.Unlock()
		cn.ncond.Broadcast()
		if err != nil {
			return
		}
	}
}

// drainNotify blocks until this connection's queued pushes are written
// out (or the connection is closed), reporting false when a non-zero
// deadline expired first. Called by the quiesce and ping paths; the
// notifier goroutine does the writing. The timer's broadcast cannot be
// lost: it needs nmu, which the waiter holds until it parks.
func (cn *conn) drainNotify(dl time.Time) bool {
	cn.nmu.Lock()
	defer cn.nmu.Unlock()
	if !dl.IsZero() {
		t := time.AfterFunc(time.Until(dl), func() {
			cn.nmu.Lock()
			cn.ncond.Broadcast()
			cn.nmu.Unlock()
		})
		defer t.Stop()
	}
	for (len(cn.nqueue) > 0 || cn.nbusy) && !cn.nclosed {
		if !dl.IsZero() && !time.Now().Before(dl) {
			return false
		}
		cn.ncond.Wait()
	}
	return true
}

func (cn *conn) close() {
	cn.nmu.Lock()
	cn.nclosed = true
	cn.nmu.Unlock()
	cn.ncond.Broadcast()
	cn.c.Close()
}

// --- remote loader (distributed deployments) ---

// remoteLoader fetches missing base ranges for one shard from home
// servers over peer connections, subscribing for future updates (§2.4,
// §3.3). Pieces whose owner is this server itself (a symmetric mesh,
// where every member is home for part of each table) are skipped: their
// data arrives as direct writes, is replicated across the pool's
// internal shards, and a network self-fetch would recurse into this
// same loader.
//
// Connections are keyed by peer *address* and shared across the mesh's
// generations: ownership is read through the mesh's current view, so a
// load started after a live migration — or after a membership change
// shifted owner indexes — routes to the range's current home. A fetch
// that races a migration gets a StatusNotOwner reply carrying the newer
// map; the loader adopts it and retries against the new owner, and if
// pieces still cannot be fetched the load *fails* (shard.LoadFailed)
// rather than marking an absent range resident — blocked readers retry
// and re-route instead of silently seeing a gap. Connections to
// members that left the mesh are closed by the resize that adopts the
// shrunk view; connections to fresh members dial on demand.
type remoteLoader struct {
	sh   *shard.Shard
	view *atomic.Pointer[meshView]

	mu    sync.Mutex
	conns map[string]*client.Client // by peer address
	feeds map[string]*subFeed       // parallel to conns
}

func newRemoteLoader(sh *shard.Shard, view *atomic.Pointer[meshView]) *remoteLoader {
	return &remoteLoader{
		sh: sh, view: view,
		conns: make(map[string]*client.Client),
		feeds: make(map[string]*subFeed),
	}
}

// conn returns this shard's connection to the peer at addr, dialing on
// first use (a member that joined after the mesh was wired).
func (l *remoteLoader) conn(addr string) (*client.Client, *subFeed, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if c, ok := l.conns[addr]; ok {
		if !c.Failed() {
			return c, l.feeds[addr], nil
		}
		// The peer's process went away (restart, crash). Redial: the new
		// process accepts fresh subscriptions; the watchdog invalidates
		// whatever the dead connection's subscriptions were keeping
		// fresh.
		c.Close()
		delete(l.conns, addr)
		delete(l.feeds, addr)
	}
	c, err := client.Dial(addr)
	if err != nil {
		return nil, nil, err
	}
	feed := &subFeed{sh: l.sh, addr: addr, view: l.view}
	c.OnNotify = feed.notify
	l.conns[addr] = c
	l.feeds[addr] = feed
	return c, feed, nil
}

// retain keeps only the connections to addresses in want, closing the
// rest (members that drained out of the mesh).
func (l *remoteLoader) retain(want map[string]bool) {
	l.mu.Lock()
	defer l.mu.Unlock()
	for addr, c := range l.conns {
		if !want[addr] {
			c.Close()
			delete(l.conns, addr)
			delete(l.feeds, addr)
		}
	}
}

// retireFailed closes and forgets connections whose peer process went
// away, returning their addresses so the watchdog can invalidate the
// coverage their subscriptions were keeping fresh.
func (l *remoteLoader) retireFailed() []string {
	l.mu.Lock()
	defer l.mu.Unlock()
	var out []string
	for addr, c := range l.conns {
		if c.Failed() {
			c.Close()
			delete(l.conns, addr)
			delete(l.feeds, addr)
			out = append(out, addr)
		}
	}
	return out
}

// connsFor returns the current connections (quiesce fencing, drains).
func (l *remoteLoader) connSnapshot() []*client.Client {
	l.mu.Lock()
	defer l.mu.Unlock()
	out := make([]*client.Client, 0, len(l.conns))
	for _, c := range l.conns {
		out = append(out, c)
	}
	return out
}

// connTo returns the connection to addr if one exists (fencing).
func (l *remoteLoader) connTo(addr string) *client.Client {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.conns[addr]
}

func (l *remoteLoader) closeAll() {
	l.mu.Lock()
	defer l.mu.Unlock()
	for addr, c := range l.conns {
		c.Close()
		delete(l.conns, addr)
		delete(l.feeds, addr)
	}
}

// allConns snapshots every loader's connections. Caller holds mmu.
func (m *meshState) allConns() []*client.Client {
	var out []*client.Client
	for _, l := range m.loaders {
		out = append(out, l.connSnapshot()...)
	}
	return out
}

// closeAll tears down every loader connection and signals the watchdog
// to exit. Caller holds mmu (or owns the mesh exclusively, as Close
// does).
func (m *meshState) closeAll() {
	if m.stop != nil {
		m.stopOnce.Do(func() { close(m.stop) })
	}
	for _, l := range m.loaders {
		l.closeAll()
	}
}

// meshWatch notices peers whose process went away — a connection a
// restarted peer cannot resurrect — and drops the mesh-table coverage
// this server loaded from them: the subscriptions keeping it fresh died
// with the old process, so serving it would go silently stale. The drop
// has eviction semantics; the next read re-fetches from (and
// re-subscribes at) whatever process answers at the address now. The
// replica manager runs the same protocol for its copies (replica.go);
// this watchdog covers the load path.
func (s *Server) meshWatch(m *meshState) {
	defer close(m.done)
	t := time.NewTicker(replWatchEvery)
	defer t.Stop()
	for {
		select {
		case <-m.stop:
			return
		case <-t.C:
		}
		s.mmu.Lock()
		if s.mesh != m {
			s.mmu.Unlock()
			return
		}
		tables := make([]string, 0, len(m.tables))
		for tb := range m.tables {
			tables = append(tables, tb)
		}
		s.mmu.Unlock()
		failed := make(map[string]bool)
		for _, l := range m.loaders {
			for _, a := range l.retireFailed() {
				failed[a] = true
			}
		}
		if len(failed) == 0 {
			continue
		}
		v := m.view.Load()
		if v == nil {
			continue
		}
		held := s.replicaHeldRanges()
		for o, a := range v.addrs {
			if !failed[a] || v.self[a] {
				continue
			}
			for _, rr := range subRanges(ownerRange(v.pmap, o), tables) {
				// A range held as a replica copy is the replica
				// manager's to invalidate — it re-snapshots stale copies
				// and they may be the only surviving data for a repair
				// to promote. Likewise dropUnownedPieces spares pieces
				// the gate already promoted this member to serve.
				if overlapsAny(rr, held) {
					continue
				}
				s.dropUnownedPieces(rr)
			}
		}
	}
}

// replicaHeldRanges snapshots the ranges this member currently holds
// replica copies of (empty when replication is off).
func (s *Server) replicaHeldRanges() []keys.Range {
	s.rmu.Lock()
	st := s.repl
	s.rmu.Unlock()
	if st == nil {
		return nil
	}
	st.mu.Lock()
	defer st.mu.Unlock()
	out := make([]keys.Range, 0, len(st.held))
	for r := range st.held {
		out = append(out, r)
	}
	return out
}

func overlapsAny(r keys.Range, rs []keys.Range) bool {
	for _, h := range rs {
		if r.Overlaps(h) {
			return true
		}
	}
	return false
}

// subFeed serializes one peer connection's subscription stream against
// the snapshot scans that install its subscriptions. A snapshot's reply
// and the pushes for mutations after it race on the wire in either
// order (the push queue and the reply path are separate writers at the
// peer), so the subscriber buffers pushes that overlap an in-flight
// snapshot and applies them after it: the snapshot — strictly older than
// every push, because it is taken atomically with the subscription
// install — can then never clobber a newer pushed value. Both notify
// and the snapshot callback run on the peer client's reader goroutine;
// the mutex covers registration from the loader goroutine.
//
// The feed also guards against stale deliveries from a peer that lost a
// range to a live migration or a drain: pushes and snapshots are
// discarded when the current view no longer homes their keys at this
// feed's peer address, so an in-flight delivery from the old owner
// cannot overwrite a newer value written at (and replicated from) the
// new owner.
type subFeed struct {
	sh     *shard.Shard
	addr   string // this feed's peer address
	view   *atomic.Pointer[meshView]
	mu     sync.Mutex
	pieces []*feedPiece
}

// feedPiece is one in-flight snapshot range and the pushes buffered
// behind it.
type feedPiece struct {
	r   keys.Range
	buf []core.Change
}

// register enters a snapshot range before its scan is sent, so a push
// racing ahead of the reply is buffered rather than applied early.
func (fd *subFeed) register(r keys.Range) *feedPiece {
	p := &feedPiece{r: r}
	fd.mu.Lock()
	fd.pieces = append(fd.pieces, p)
	fd.mu.Unlock()
	return p
}

// notify is the connection's OnNotify: changes overlapping an in-flight
// snapshot are buffered behind it, the rest apply immediately. Changes
// whose keys the peer no longer owns (migrated or drained away after
// the push was enqueued) are dropped — the new owner's replication
// stream is the authority now.
func (fd *subFeed) notify(changes []rpc.Change) {
	out := coreChanges(changes)
	if v := fd.view.Load(); v != nil {
		fresh := out[:0]
		for _, c := range out {
			if v.ownerAddr(c.Key) == fd.addr {
				fresh = append(fresh, c)
			}
		}
		out = fresh
	}
	fd.mu.Lock()
	if len(fd.pieces) > 0 {
		direct := out[:0]
		for _, c := range out {
			buffered := false
			for _, p := range fd.pieces {
				if p.r.Contains(c.Key) {
					p.buf = append(p.buf, c)
					buffered = true
					break
				}
			}
			if !buffered {
				direct = append(direct, c)
			}
		}
		out = direct
	}
	fd.mu.Unlock()
	if len(out) > 0 {
		fd.sh.ApplyBatch(out)
	}
}

// complete lands a snapshot: apply its pairs, then the pushes buffered
// behind it, and release the piece. kvs is nil when the scan failed —
// buffered pushes (if any) still apply. Idempotent per piece. A
// snapshot whose range migrated away from the peer while in flight is
// discarded whole (pairs and buffered pushes): it describes the old
// owner's state, and the loader refetches from the new home.
func (fd *subFeed) complete(p *feedPiece, kvs []core.KV) {
	fd.mu.Lock()
	found := false
	for i, q := range fd.pieces {
		if q == p {
			fd.pieces = append(fd.pieces[:i], fd.pieces[i+1:]...)
			found = true
			break
		}
	}
	buf := p.buf
	p.buf = nil
	fd.mu.Unlock()
	if !found {
		return
	}
	// Per-key staleness check: a migration completing mid-flight may
	// have moved part (a bound landed inside the piece) or all of the
	// snapshot's range away from this peer; only keys it still homes
	// apply. Buffered pushes were filtered on arrival, but the map may
	// have moved since they were buffered — re-check them too.
	v := fd.view.Load()
	owns := func(key string) bool { return v == nil || v.ownerAddr(key) == fd.addr }
	changes := make([]core.Change, 0, len(kvs)+len(buf))
	for _, kv := range kvs {
		if owns(kv.Key) {
			changes = append(changes, core.Change{Op: core.OpPut, Key: kv.Key, Value: kv.Value})
		}
	}
	for _, c := range buf {
		if owns(c.Key) {
			changes = append(changes, c)
		}
	}
	if len(changes) > 0 {
		fd.sh.ApplyBatch(changes)
	}
}

// ConnectPeers wires this server to its home servers: pmap maps key
// ranges to indexes in addrs, and tables lists the loader-backed base
// tables. Each shard dials its own peer connections, so incoming
// subscription pushes apply to the shard that subscribed.
func (s *Server) ConnectPeers(pmap *partition.Map, addrs []string, tables ...string) error {
	return s.ConnectMesh(pmap, addrs, nil, tables...)
}

// ConnectMesh is ConnectPeers for symmetric meshes: self lists the owner
// indexes that are this server itself, whose ranges it serves from
// direct writes instead of remote fetches. Calling it again with the
// same topology extends the loader-backed table set (a join installed at
// runtime adding source tables) reusing the dialed connections; a
// different topology is rejected unless the server already holds a
// newer published cluster map (the caller is stale; the tables still
// extend). Wiring is atomic: if any peer dial fails, the connections
// dialed for this call are closed and the server is left exactly as
// before, so a retry does not leak or duplicate.
func (s *Server) ConnectMesh(pmap *partition.Map, addrs []string, self []int, tables ...string) error {
	s.mmu.Lock()
	defer s.mmu.Unlock()
	if s.mesh == nil {
		// If a cluster client already published a versioned view (the
		// gate), that is the authority: the wire bounds must agree, and
		// the mesh adopts the gate's map so its position survives.
		if g := s.pool.Gate(); g != nil {
			if err := sameBounds(g.Map.Bounds(), pmap.Bounds()); err != nil {
				return fmt.Errorf("pequod server: mesh bounds disagree with the published cluster map (e%d v%d): %w",
					g.Map.Epoch(), g.Map.Version(), err)
			}
			pmap = g.Map
		}
		view := &meshView{pmap: pmap, addrs: append([]string(nil), addrs...), self: selfAddrs(addrs, self)}
		mesh := &meshState{tables: make(map[string]bool)}
		mesh.view.Store(view)
		for i := 0; i < s.pool.NumShards(); i++ {
			mesh.loaders = append(mesh.loaders, newRemoteLoader(s.pool.Shard(i), &mesh.view))
		}
		// Eager dial so a bad member address fails the wiring visibly
		// (and atomically) instead of surfacing later as load timeouts.
		for _, l := range mesh.loaders {
			for _, a := range view.addrs {
				if view.self[a] {
					continue // no connection to ourselves
				}
				if _, _, err := l.conn(a); err != nil {
					mesh.closeAll()
					return fmt.Errorf("pequod server: mesh peer %s: %w", a, err)
				}
			}
		}
		mesh.stop = make(chan struct{})
		mesh.done = make(chan struct{})
		go s.meshWatch(mesh)
		s.mesh = mesh
	} else if err := s.mesh.sameTopology(pmap, addrs); err != nil {
		// A stale caller re-wiring with outdated bounds is harmless when
		// this server already follows a newer published map — the tables
		// below still extend. A genuinely different topology at the same
		// generation is rejected: silently keeping the old map would
		// route remote loads to the wrong owners.
		v := s.mesh.view.Load()
		if !v.pmap.NewerThan(pmap.Epoch(), pmap.Version()) {
			return err
		}
	}
	var fresh []string
	for _, t := range tables {
		if !s.mesh.tables[t] {
			s.mesh.tables[t] = true
			fresh = append(fresh, t)
		}
	}
	if len(fresh) > 0 {
		s.pool.SetExternalTables(fresh...)
		for i, l := range s.mesh.loaders {
			s.pool.Shard(i).SetLoader(l, fresh...)
		}
	}
	return nil
}

// sameTopology rejects re-wiring under a different partition or member
// set.
func (m *meshState) sameTopology(pmap *partition.Map, addrs []string) error {
	v := m.view.Load()
	if err := sameBounds(v.pmap.Bounds(), pmap.Bounds()); err != nil {
		return fmt.Errorf("pequod server: already meshed: %w", err)
	}
	if len(v.addrs) != len(addrs) {
		return fmt.Errorf("pequod server: already meshed over %d owners, got %d", len(v.addrs), len(addrs))
	}
	for i := range v.addrs {
		if v.addrs[i] != addrs[i] {
			return fmt.Errorf("pequod server: mesh member %d differs: %q vs %q", i, v.addrs[i], addrs[i])
		}
	}
	return nil
}

// sameBounds compares two split-point lists.
func sameBounds(prev, next []string) error {
	if len(prev) != len(next) {
		return fmt.Errorf("partition has %d ranges, got %d", len(prev)+1, len(next)+1)
	}
	for i := range prev {
		if prev[i] != next[i] {
			return fmt.Errorf("bound %d differs: %q vs %q", i, prev[i], next[i])
		}
	}
	return nil
}

// StartLoad implements core.BaseLoader: fetch each home-server piece of
// the range with a subscription. Snapshots apply through the peer
// connection's subFeed — on its reader goroutine, ordered against the
// subscription pushes — and the final LoadComplete only marks presence
// (no data) once every piece has landed. If pieces cannot be fetched
// even after adopting a newer map from NotOwner replies, the load fails
// instead: marking an unfetched range resident would serve a silent gap.
func (l *remoteLoader) StartLoad(table string, r keys.Range) {
	go func() {
		if l.fetch(r, loadAttempts) {
			l.sh.LoadComplete(table, r, nil)
		} else {
			l.sh.LoadFailed(table, r)
		}
	}()
}

// loadAttempts bounds re-splitting a load against refreshed maps; each
// retry follows either an adopted newer map or a short pause, so a load
// racing a migration converges on the new owner.
const loadAttempts = 4

// fetch loads every home-server piece of r, retrying pieces whose owner
// moved mid-fetch. It reports whether everything landed.
func (l *remoteLoader) fetch(r keys.Range, attempts int) bool {
	type wait struct {
		p    *feedPiece
		feed *subFeed
		f    *client.Future
		r    keys.Range
	}
	v := l.view.Load()
	var waits []wait
	var failed []keys.Range
	for _, pc := range v.pmap.Split(r) {
		addr := v.addrs[pc.Owner]
		if v.self[addr] {
			continue // already local; only presence is missing
		}
		c, feed, err := l.conn(addr)
		if err != nil {
			failed = append(failed, pc.R)
			continue
		}
		p := feed.register(pc.R)
		fut := c.ScanSubAsync(pc.R.Lo, pc.R.Hi, func(m *rpc.Message) {
			if m.Status == rpc.StatusOK {
				feed.complete(p, m.KVs)
			} else {
				// Release the piece so later pushes aren't buffered
				// forever; the range stays absent for now.
				feed.complete(p, nil)
			}
		})
		waits = append(waits, wait{p: p, feed: feed, f: fut, r: pc.R})
	}
	for _, w := range waits {
		m, err := w.f.Wait()
		switch {
		case err != nil:
			// Transport failure: the callback never ran. Release the
			// piece and retry the fetch.
			w.feed.complete(w.p, nil)
			failed = append(failed, w.r)
		case m.Status == rpc.StatusNotOwner:
			// The piece migrated away from its home mid-fetch. Adopt the
			// newer map the reply carries and refetch from the new owner.
			l.adopt(m.Epoch, m.MapVersion, m.Bounds, m.Peers)
			failed = append(failed, w.r)
		case m.Status != rpc.StatusOK:
			failed = append(failed, w.r)
		}
	}
	if len(failed) == 0 {
		return true
	}
	if attempts <= 1 {
		return false
	}
	// Give a publishing coordinator a moment to finish its MapUpdate
	// round before re-splitting against the (possibly adopted) map.
	time.Sleep(2 * time.Millisecond)
	for _, fr := range failed {
		if !l.fetch(fr, attempts-1) {
			return false
		}
	}
	return true
}

// adopt installs a newer cluster map into the mesh view (no-op when the
// view is already as new) — freshness learned from a NotOwner reply
// propagating to every loader and feed sharing the view. The reply's
// peer addresses come along so a membership change the reply describes
// re-routes loads too; a reply without them (legacy wiring) only
// adopts when the owner count is unchanged.
func (l *remoteLoader) adopt(epoch, version int64, bounds, peers []string) {
	next, err := partition.NewEpochVersioned(epoch, version, bounds...)
	if err != nil {
		return
	}
	for {
		cur := l.view.Load()
		if cur != nil && !next.NewerThan(cur.pmap.Epoch(), cur.pmap.Version()) {
			return
		}
		addrs := peers
		if len(addrs) != next.Servers() {
			if cur == nil || len(cur.addrs) != next.Servers() {
				return // cannot place owners; wait for a full MapUpdate
			}
			addrs = cur.addrs
		}
		var self map[string]bool
		if cur != nil {
			self = cur.self
		}
		nv := &meshView{pmap: next, addrs: append([]string(nil), addrs...), self: self}
		if l.view.CompareAndSwap(cur, nv) {
			return
		}
	}
}
