// Package server implements the networked Pequod cache server: the RPC
// surface over one core.Engine, cross-server base-data subscriptions with
// asynchronous update notification (§2.4), and remote/database loaders
// that drive the engine's restart contexts (§3.3).
//
// Concurrency model: the engine is single-writer like the paper's
// event-driven server; a mutex serializes request application while
// per-connection goroutines handle framing, and per-connection notifier
// goroutines drain subscription pushes so slow subscribers never block
// the engine.
package server

import (
	"bufio"
	"encoding/json"
	"errors"
	"net"
	"sync"

	"pequod/internal/client"
	"pequod/internal/core"
	"pequod/internal/interval"
	"pequod/internal/keys"
	"pequod/internal/partition"
	"pequod/internal/rpc"
)

// Config configures a Server.
type Config struct {
	// Name identifies the server in logs/stats.
	Name string
	// Engine options (optimization toggles, memory limit).
	Engine core.Options
	// Joins, if non-empty, is installed at startup.
	Joins string
	// SubtableDepths configures §4.1 boundaries at startup.
	SubtableDepths map[string]int
}

// subscription is a cross-server base-data subscription (§2.4): the
// paper's "H installs a subscription for S to k"; ours are range-level,
// installed by Scan requests carrying the subscribe flag.
type subscription struct {
	cn *conn
	r  keys.Range
}

// Server is one Pequod cache server.
type Server struct {
	name string

	mu       sync.Mutex // serializes engine access (single-writer engine)
	e        *core.Engine
	loadCond *sync.Cond // signaled when an async load completes

	subs *interval.Tree[*subscription]

	ln     net.Listener
	connWG sync.WaitGroup
	cmu    sync.Mutex
	conns  map[*conn]struct{}
	closed bool

	peers []*client.Client // distributed mode: connections to home servers
}

// New creates a server.
func New(cfg Config) (*Server, error) {
	s := &Server{
		name:  cfg.Name,
		e:     core.New(cfg.Engine),
		subs:  interval.New[*subscription](),
		conns: make(map[*conn]struct{}),
	}
	s.loadCond = sync.NewCond(&s.mu)
	for t, d := range cfg.SubtableDepths {
		s.e.SetSubtableDepth(t, d)
	}
	if cfg.Joins != "" {
		if err := s.e.InstallText(cfg.Joins); err != nil {
			return nil, err
		}
	}
	s.e.SetChangeHook(s.forwardChange)
	return s, nil
}

// Engine exposes the engine for embedded use; callers must hold Lock.
func (s *Server) Engine() *core.Engine { return s.e }

// Lock/Unlock expose the engine mutex for embedded (in-process) callers
// such as the workload drivers' warm-up phases.
func (s *Server) Lock()   { s.mu.Lock() }
func (s *Server) Unlock() { s.mu.Unlock() }

// forwardChange pushes a base-data change to subscribed peers. Called
// with s.mu held (from inside engine mutation), so it only enqueues.
func (s *Server) forwardChange(c core.Change) {
	if c.Op == core.OpEvict {
		// Eviction drops this server's cache, not the data's validity;
		// replicas keep their copies (§2.5).
		return
	}
	if s.subs.Len() == 0 {
		return
	}
	op := rpc.ChangePut
	if c.Op == core.OpRemove {
		op = rpc.ChangeRemove
	}
	s.subs.Stab(c.Key, func(en *interval.Entry[*subscription]) bool {
		en.Val.cn.pushNotify(rpc.Change{Op: op, Key: c.Key, Value: c.Value})
		return true
	})
}

// ListenAndServe listens on addr and serves until Close.
func (s *Server) ListenAndServe(addr string) error {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	return s.Serve(ln)
}

// Serve accepts connections on ln until Close.
func (s *Server) Serve(ln net.Listener) error {
	s.cmu.Lock()
	if s.closed {
		s.cmu.Unlock()
		return errors.New("pequod server: closed")
	}
	s.ln = ln
	s.cmu.Unlock()
	for {
		c, err := ln.Accept()
		if err != nil {
			s.cmu.Lock()
			closed := s.closed
			s.cmu.Unlock()
			if closed {
				return nil
			}
			return err
		}
		cn := newConn(s, c)
		s.cmu.Lock()
		s.conns[cn] = struct{}{}
		s.cmu.Unlock()
		s.connWG.Add(1)
		go cn.serve()
	}
}

// Start listens on a free loopback port and serves in the background,
// returning the address (test/bench convenience).
func (s *Server) Start() (string, error) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return "", err
	}
	go s.Serve(ln)
	return ln.Addr().String(), nil
}

// Close stops the listener and all connections.
func (s *Server) Close() {
	s.cmu.Lock()
	if s.closed {
		s.cmu.Unlock()
		return
	}
	s.closed = true
	ln := s.ln
	conns := make([]*conn, 0, len(s.conns))
	for cn := range s.conns {
		conns = append(conns, cn)
	}
	s.cmu.Unlock()
	if ln != nil {
		ln.Close()
	}
	for _, cn := range conns {
		cn.close()
	}
	s.connWG.Wait()
	for _, p := range s.peers {
		p.Close()
	}
}

// dropConn unregisters a closed connection and its subscriptions.
func (s *Server) dropConn(cn *conn) {
	s.cmu.Lock()
	delete(s.conns, cn)
	s.cmu.Unlock()
	s.mu.Lock()
	for _, en := range cn.subEntries {
		s.subs.Delete(en)
	}
	cn.subEntries = nil
	s.mu.Unlock()
}

// statJSON renders server statistics.
func (s *Server) statJSON() string {
	s.mu.Lock()
	st := s.e.Stats()
	entries := s.e.Store().Len()
	bytes := s.e.Store().Bytes()
	s.mu.Unlock()
	out, _ := json.Marshal(struct {
		Name    string     `json:"name"`
		Entries int        `json:"entries"`
		Bytes   int64      `json:"bytes"`
		Stats   core.Stats `json:"stats"`
	}{s.name, entries, bytes, st})
	return string(out)
}

// handle processes one request message, returning the reply (nil for
// one-way messages).
func (s *Server) handle(cn *conn, m *rpc.Message) *rpc.Message {
	switch m.Type {
	case rpc.MsgGet:
		for {
			s.mu.Lock()
			v, found, pending := s.e.Get(m.Key)
			if pending == 0 {
				s.mu.Unlock()
				r := rpc.OKReply(m.Seq)
				r.Value, r.Found = v, found
				return r
			}
			s.waitLoadsLocked()
			s.mu.Unlock()
		}

	case rpc.MsgPut:
		s.mu.Lock()
		s.e.Put(m.Key, m.Value)
		s.mu.Unlock()
		return rpc.OKReply(m.Seq)

	case rpc.MsgRemove:
		s.mu.Lock()
		found := s.e.Remove(m.Key)
		s.mu.Unlock()
		r := rpc.OKReply(m.Seq)
		r.Found = found
		return r

	case rpc.MsgScan:
		for {
			s.mu.Lock()
			kvs, pending := s.e.ScanInto(m.Lo, m.Hi, m.Limit, cn.kvBuf)
			cn.kvBuf = kvs // reuse capacity on the next request
			if pending == 0 {
				if m.SubscribeFlag {
					en := s.subs.Insert(m.Lo, m.Hi, &subscription{cn: cn, r: keys.Range{Lo: m.Lo, Hi: m.Hi}})
					cn.subEntries = append(cn.subEntries, en)
				}
				s.mu.Unlock()
				r := rpc.OKReply(m.Seq)
				if cap(cn.rpcKVBuf) < len(kvs) {
					cn.rpcKVBuf = make([]rpc.KV, len(kvs))
				}
				r.KVs = cn.rpcKVBuf[:len(kvs)]
				for i, kv := range kvs {
					r.KVs[i] = rpc.KV{Key: kv.Key, Value: kv.Value}
				}
				return r
			}
			s.waitLoadsLocked()
			s.mu.Unlock()
		}

	case rpc.MsgCount:
		for {
			s.mu.Lock()
			n, pending := s.e.Count(m.Lo, m.Hi)
			if pending == 0 {
				s.mu.Unlock()
				r := rpc.OKReply(m.Seq)
				r.Count = int64(n)
				return r
			}
			s.waitLoadsLocked()
			s.mu.Unlock()
		}

	case rpc.MsgAddJoin:
		s.mu.Lock()
		err := s.e.InstallText(m.Text)
		s.mu.Unlock()
		if err != nil {
			return rpc.ErrReply(m.Seq, err)
		}
		return rpc.OKReply(m.Seq)

	case rpc.MsgNotify:
		// Change batch from a peer (home-server subscription push) or
		// from a write-around database feed: apply as base writes.
		s.ApplyChanges(m.Changes)
		return nil // one-way

	case rpc.MsgStat:
		r := rpc.OKReply(m.Seq)
		r.Value = s.statJSON()
		return r

	case rpc.MsgFlush:
		s.mu.Lock()
		// Rebuild the engine preserving configuration: used by benches to
		// reset between runs.
		s.mu.Unlock()
		return rpc.ErrReply(m.Seq, errors.New("flush unsupported; restart the server"))

	case rpc.MsgSetSubtable:
		s.mu.Lock()
		s.e.SetSubtableDepth(m.Table, m.Depth)
		s.mu.Unlock()
		return rpc.OKReply(m.Seq)
	}
	return rpc.ErrReply(m.Seq, errors.New("unknown request"))
}

// waitLoadsLocked blocks (holding s.mu via the cond) until some async
// load completes, then lets the caller retry — the iterative evaluation
// of §3.3.
func (s *Server) waitLoadsLocked() {
	gen := s.e.LoadGen()
	for s.e.LoadGen() == gen {
		s.loadCond.Wait()
	}
}

// ApplyChanges applies replicated changes (thread-safe).
func (s *Server) ApplyChanges(changes []rpc.Change) {
	s.mu.Lock()
	for _, c := range changes {
		if c.Op == rpc.ChangeRemove {
			s.e.Remove(c.Key)
		} else {
			s.e.Put(c.Key, c.Value)
		}
	}
	s.mu.Unlock()
}

// --- connection ---

type conn struct {
	s  *Server
	c  net.Conn
	bw *bufio.Writer

	wmu     sync.Mutex // guards bw
	scratch []byte

	// Scan result buffers, reused across this connection's requests:
	// request handling is sequential per connection and the reply is
	// fully encoded before the next request is read, so reuse is safe.
	kvBuf    []core.KV
	rpcKVBuf []rpc.KV

	// notify queue drained by the notifier goroutine
	nmu     sync.Mutex
	ncond   *sync.Cond
	nqueue  []rpc.Change
	nclosed bool

	subEntries []*interval.Entry[*subscription]
}

func newConn(s *Server, c net.Conn) *conn {
	cn := &conn{s: s, c: c, bw: bufio.NewWriterSize(c, 64<<10)}
	cn.ncond = sync.NewCond(&cn.nmu)
	return cn
}

func (cn *conn) serve() {
	defer cn.s.connWG.Done()
	defer cn.s.dropConn(cn)
	defer cn.close()
	go cn.notifyLoop()
	br := bufio.NewReaderSize(cn.c, 64<<10)
	var scratch []byte
	for {
		m, sc, err := rpc.ReadMessage(br, scratch)
		if err != nil {
			return
		}
		scratch = sc
		if r := cn.s.handle(cn, m); r != nil {
			// Batch flushes across pipelined requests: only force bytes
			// out when the input buffer has drained, so a burst of
			// pipelined requests costs one write syscall, not one per
			// reply.
			if err := cn.write(r, br.Buffered() == 0); err != nil {
				return
			}
		}
	}
}

// write sends a frame, flushing when requested (end of a pipelined
// burst) — the notifier goroutine always flushes its own pushes.
func (cn *conn) write(m *rpc.Message, flush bool) error {
	cn.wmu.Lock()
	defer cn.wmu.Unlock()
	var err error
	cn.scratch, err = rpc.WriteMessage(cn.bw, m, cn.scratch)
	if err != nil {
		return err
	}
	if flush {
		return cn.bw.Flush()
	}
	return nil
}

// pushNotify enqueues a subscription push (called with s.mu held; must
// not block).
func (cn *conn) pushNotify(c rpc.Change) {
	cn.nmu.Lock()
	cn.nqueue = append(cn.nqueue, c)
	cn.nmu.Unlock()
	cn.ncond.Signal()
}

// notifyLoop drains the notify queue into batched MsgNotify frames —
// asynchronous update propagation, the source of Pequod's eventual
// consistency (§2.4).
func (cn *conn) notifyLoop() {
	for {
		cn.nmu.Lock()
		for len(cn.nqueue) == 0 && !cn.nclosed {
			cn.ncond.Wait()
		}
		if cn.nclosed && len(cn.nqueue) == 0 {
			cn.nmu.Unlock()
			return
		}
		batch := cn.nqueue
		cn.nqueue = nil
		cn.nmu.Unlock()
		if err := cn.write(&rpc.Message{Type: rpc.MsgNotify, Changes: batch}, true); err != nil {
			return
		}
	}
}

func (cn *conn) close() {
	cn.nmu.Lock()
	cn.nclosed = true
	cn.nmu.Unlock()
	cn.ncond.Signal()
	cn.c.Close()
}

// --- remote loader (distributed deployments) ---

// remoteLoader fetches missing base ranges from home servers over peer
// connections, subscribing for future updates (§2.4, §3.3).
type remoteLoader struct {
	s     *Server
	peers []*client.Client
	pmap  *partition.Map
}

// ConnectPeers wires this server to its home servers: pmap maps key
// ranges to indexes in addrs, and tables lists the loader-backed base
// tables. Incoming subscription pushes apply as base writes.
func (s *Server) ConnectPeers(pmap *partition.Map, addrs []string, tables ...string) error {
	peers := make([]*client.Client, len(addrs))
	for i, a := range addrs {
		c, err := client.Dial(a)
		if err != nil {
			return err
		}
		c.OnNotify = func(changes []rpc.Change) {
			s.ApplyChanges(changes)
			s.mu.Lock()
			s.loadCond.Broadcast()
			s.mu.Unlock()
		}
		peers[i] = c
	}
	s.peers = peers
	s.e.SetLoader(&remoteLoader{s: s, peers: peers, pmap: pmap}, tables...)
	return nil
}

// StartLoad implements core.BaseLoader: fetch each shard from its home
// server with a subscription, then deliver to the engine.
func (l *remoteLoader) StartLoad(table string, r keys.Range) {
	shards := l.pmap.Split(r)
	go func() {
		var kvs []core.KV
		futs := make([]*client.Future, len(shards))
		for i, sh := range shards {
			futs[i] = l.peers[sh.Owner].ScanAsync(sh.R.Lo, sh.R.Hi, 0, true)
		}
		for _, f := range futs {
			m, err := f.Wait()
			if err != nil || m.Status != rpc.StatusOK {
				continue // the range stays pending-free but absent; a
				// retry will refetch
			}
			for _, kv := range m.KVs {
				kvs = append(kvs, core.KV{Key: kv.Key, Value: kv.Value})
			}
		}
		l.s.mu.Lock()
		l.s.e.LoadComplete(table, r, kvs)
		l.s.loadCond.Broadcast()
		l.s.mu.Unlock()
	}()
}
