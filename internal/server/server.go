// Package server implements the networked Pequod cache server: the RPC
// surface over a sharded pool of core engines, cross-server base-data
// subscriptions with asynchronous update notification (§2.4), and
// remote/database loaders that drive the engines' restart contexts
// (§3.3).
//
// Concurrency model: each engine is single-writer like the paper's
// event-driven server, but the server hosts Config.Shards of them,
// partitioned by key range (internal/shard). Requests lock only the
// shard owning their key; cross-shard scans fan out concurrently, so a
// multi-core machine serves reads from all cores instead of behind one
// global mutex. Per-connection goroutines handle framing, and
// per-connection notifier goroutines drain subscription pushes so slow
// subscribers never block an engine.
package server

import (
	"bufio"
	"encoding/json"
	"errors"
	"net"
	"sync"
	"sync/atomic"

	"pequod/internal/client"
	"pequod/internal/core"
	"pequod/internal/interval"
	"pequod/internal/keys"
	"pequod/internal/partition"
	"pequod/internal/rpc"
	"pequod/internal/shard"
)

// Config configures a Server.
type Config struct {
	// Name identifies the server in logs/stats.
	Name string
	// Engine options (optimization toggles, memory limit). A MemLimit is
	// split evenly across the shards.
	Engine core.Options
	// Joins, if non-empty, is installed at startup.
	Joins string
	// SubtableDepths configures §4.1 boundaries at startup.
	SubtableDepths map[string]int
	// Shards is the number of in-process engines (default 1). Serving
	// scales with shards when Bounds matches the workload's key
	// distribution.
	Shards int
	// Bounds are the partition split points between shards
	// (len = Shards-1); see shard.Config.
	Bounds []string
}

// subscription is a cross-server base-data subscription (§2.4): the
// paper's "H installs a subscription for S to k"; ours are range-level,
// installed by Scan requests carrying the subscribe flag.
type subscription struct {
	cn *conn
	r  keys.Range
}

// Server is one Pequod cache server.
type Server struct {
	name string

	pool *shard.Pool

	smu   sync.Mutex // guards subs and conn.subEntries
	subs  *interval.Tree[*subscription]
	nsubs atomic.Int64 // == subs.Len(); lock-free no-subscriber fast path

	ln     net.Listener
	connWG sync.WaitGroup
	cmu    sync.Mutex
	conns  map[*conn]struct{}
	closed bool

	peers []*client.Client // distributed mode: connections to home servers
}

// New creates a server.
func New(cfg Config) (*Server, error) {
	pool, err := shard.New(shard.Config{
		Shards: cfg.Shards,
		Bounds: cfg.Bounds,
		Engine: cfg.Engine,
	})
	if err != nil {
		return nil, err
	}
	s := &Server{
		name:  cfg.Name,
		pool:  pool,
		subs:  interval.New[*subscription](),
		conns: make(map[*conn]struct{}),
	}
	for t, d := range cfg.SubtableDepths {
		pool.SetSubtableDepth(t, d)
	}
	if cfg.Joins != "" {
		if err := pool.InstallText(cfg.Joins); err != nil {
			pool.Close()
			return nil, err
		}
	}
	pool.SetHook(s.forwardChange)
	return s, nil
}

// Pool exposes the shard pool for embedded use (stats, tests, warm-up).
func (s *Server) Pool() *shard.Pool { return s.pool }

// Bytes returns the approximate memory footprint across all shards.
func (s *Server) Bytes() int64 { return s.pool.Bytes() }

// forwardChange pushes an owner-authoritative change to subscribed
// peers. Called with the owning shard's lock held (from inside engine
// mutation), so it only enqueues.
func (s *Server) forwardChange(_ int, c core.Change) {
	if c.Op == core.OpEvict {
		// Eviction drops this server's cache, not the data's validity;
		// replicas keep their copies (§2.5).
		return
	}
	if s.nsubs.Load() == 0 {
		// No subscribers: skip the subscription tree entirely so shards'
		// write paths don't re-serialize on one mutex. A subscription
		// racing in here was installed after this change's snapshot
		// scan, which already included the change.
		return
	}
	s.smu.Lock()
	defer s.smu.Unlock()
	op := rpc.ChangePut
	if c.Op == core.OpRemove {
		op = rpc.ChangeRemove
	}
	s.subs.Stab(c.Key, func(en *interval.Entry[*subscription]) bool {
		en.Val.cn.pushNotify(rpc.Change{Op: op, Key: c.Key, Value: c.Value})
		return true
	})
}

// ListenAndServe listens on addr and serves until Close.
func (s *Server) ListenAndServe(addr string) error {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	return s.Serve(ln)
}

// Serve accepts connections on ln until Close.
func (s *Server) Serve(ln net.Listener) error {
	s.cmu.Lock()
	if s.closed {
		s.cmu.Unlock()
		return errors.New("pequod server: closed")
	}
	s.ln = ln
	s.cmu.Unlock()
	for {
		c, err := ln.Accept()
		if err != nil {
			s.cmu.Lock()
			closed := s.closed
			s.cmu.Unlock()
			if closed {
				return nil
			}
			return err
		}
		cn := newConn(s, c)
		s.cmu.Lock()
		s.conns[cn] = struct{}{}
		s.cmu.Unlock()
		s.connWG.Add(1)
		go cn.serve()
	}
}

// Start listens on a free loopback port and serves in the background,
// returning the address (test/bench convenience).
func (s *Server) Start() (string, error) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return "", err
	}
	go s.Serve(ln)
	return ln.Addr().String(), nil
}

// Close stops the listener, all connections, and the shard pool.
func (s *Server) Close() {
	s.cmu.Lock()
	if s.closed {
		s.cmu.Unlock()
		return
	}
	s.closed = true
	ln := s.ln
	conns := make([]*conn, 0, len(s.conns))
	for cn := range s.conns {
		conns = append(conns, cn)
	}
	s.cmu.Unlock()
	if ln != nil {
		ln.Close()
	}
	for _, cn := range conns {
		cn.close()
	}
	s.connWG.Wait()
	for _, p := range s.peers {
		p.Close()
	}
	s.pool.Close()
}

// dropConn unregisters a closed connection and its subscriptions.
func (s *Server) dropConn(cn *conn) {
	s.cmu.Lock()
	delete(s.conns, cn)
	s.cmu.Unlock()
	s.smu.Lock()
	for _, en := range cn.subEntries {
		s.subs.Delete(en)
	}
	s.nsubs.Add(int64(-len(cn.subEntries)))
	cn.subEntries = nil
	s.smu.Unlock()
}

// statJSON renders server statistics aggregated across shards.
func (s *Server) statJSON() string {
	out, _ := json.Marshal(struct {
		Name    string     `json:"name"`
		Shards  int        `json:"shards"`
		Entries int        `json:"entries"`
		Bytes   int64      `json:"bytes"`
		Stats   core.Stats `json:"stats"`
	}{s.name, s.pool.NumShards(), s.pool.Len(), s.pool.Bytes(), s.pool.Stats()})
	return string(out)
}

// handle processes one request message, returning the reply (nil for
// one-way messages). Blocking on outstanding base-data loads (§3.3)
// happens inside the pool, per shard.
func (s *Server) handle(cn *conn, m *rpc.Message) *rpc.Message {
	switch m.Type {
	case rpc.MsgGet:
		v, found := s.pool.Get(m.Key)
		r := rpc.OKReply(m.Seq)
		r.Value, r.Found = v, found
		return r

	case rpc.MsgPut:
		s.pool.Put(m.Key, m.Value)
		return rpc.OKReply(m.Seq)

	case rpc.MsgRemove:
		found := s.pool.Remove(m.Key)
		r := rpc.OKReply(m.Seq)
		r.Found = found
		return r

	case rpc.MsgScan:
		var sub func(int, keys.Range)
		if m.SubscribeFlag {
			// Install one subscription per shard piece, while that
			// piece's shard lock is still held: the snapshot the scan
			// returned and the subscription's update stream meet with no
			// gap (§2.4's atomic snapshot+subscribe).
			sub = func(_ int, r keys.Range) {
				s.smu.Lock()
				en := s.subs.Insert(r.Lo, r.Hi, &subscription{cn: cn, r: r})
				cn.subEntries = append(cn.subEntries, en)
				s.smu.Unlock()
				// Published while the piece's shard lock is still held,
				// so the owning shard's next change sees the subscriber
				// (forwardChange's fast path reads this without smu).
				s.nsubs.Add(1)
			}
		}
		kvs := s.pool.Scan(m.Lo, m.Hi, m.Limit, cn.kvBuf, sub)
		cn.kvBuf = kvs // reuse capacity on the next request
		r := rpc.OKReply(m.Seq)
		if cap(cn.rpcKVBuf) < len(kvs) {
			cn.rpcKVBuf = make([]rpc.KV, len(kvs))
		}
		r.KVs = cn.rpcKVBuf[:len(kvs)]
		for i, kv := range kvs {
			r.KVs[i] = rpc.KV{Key: kv.Key, Value: kv.Value}
		}
		return r

	case rpc.MsgCount:
		r := rpc.OKReply(m.Seq)
		r.Count = int64(s.pool.Count(m.Lo, m.Hi))
		return r

	case rpc.MsgAddJoin:
		if err := s.pool.InstallText(m.Text); err != nil {
			return rpc.ErrReply(m.Seq, err)
		}
		return rpc.OKReply(m.Seq)

	case rpc.MsgNotify:
		// Change batch from a peer (home-server subscription push) or
		// from a write-around database feed: apply as base writes.
		s.ApplyChanges(m.Changes)
		return nil // one-way

	case rpc.MsgStat:
		r := rpc.OKReply(m.Seq)
		r.Value = s.statJSON()
		return r

	case rpc.MsgFlush:
		return rpc.ErrReply(m.Seq, errors.New("flush unsupported; restart the server"))

	case rpc.MsgSetSubtable:
		s.pool.SetSubtableDepth(m.Table, m.Depth)
		return rpc.OKReply(m.Seq)
	}
	return rpc.ErrReply(m.Seq, errors.New("unknown request"))
}

// ApplyChanges applies replicated changes to their owning shards
// (thread-safe).
func (s *Server) ApplyChanges(changes []rpc.Change) {
	s.pool.Apply(coreChanges(changes))
}

// coreChanges converts wire changes to engine changes.
func coreChanges(changes []rpc.Change) []core.Change {
	out := make([]core.Change, len(changes))
	for i, c := range changes {
		op := core.OpPut
		if c.Op == rpc.ChangeRemove {
			op = core.OpRemove
		}
		out[i] = core.Change{Op: op, Key: c.Key, Value: c.Value}
	}
	return out
}

// --- connection ---

type conn struct {
	s  *Server
	c  net.Conn
	bw *bufio.Writer

	wmu     sync.Mutex // guards bw
	scratch []byte

	// Scan result buffers, reused across this connection's requests:
	// request handling is sequential per connection and the reply is
	// fully encoded before the next request is read, so reuse is safe.
	kvBuf    []core.KV
	rpcKVBuf []rpc.KV

	// notify queue drained by the notifier goroutine
	nmu     sync.Mutex
	ncond   *sync.Cond
	nqueue  []rpc.Change
	nclosed bool

	subEntries []*interval.Entry[*subscription] // guarded by s.smu
}

func newConn(s *Server, c net.Conn) *conn {
	cn := &conn{s: s, c: c, bw: bufio.NewWriterSize(c, 64<<10)}
	cn.ncond = sync.NewCond(&cn.nmu)
	return cn
}

func (cn *conn) serve() {
	defer cn.s.connWG.Done()
	defer cn.s.dropConn(cn)
	defer cn.close()
	go cn.notifyLoop()
	br := bufio.NewReaderSize(cn.c, 64<<10)
	var scratch []byte
	for {
		m, sc, err := rpc.ReadMessage(br, scratch)
		if err != nil {
			return
		}
		scratch = sc
		if r := cn.s.handle(cn, m); r != nil {
			// Batch flushes across pipelined requests: only force bytes
			// out when the input buffer has drained, so a burst of
			// pipelined requests costs one write syscall, not one per
			// reply.
			if err := cn.write(r, br.Buffered() == 0); err != nil {
				return
			}
		}
	}
}

// write sends a frame, flushing when requested (end of a pipelined
// burst) — the notifier goroutine always flushes its own pushes.
func (cn *conn) write(m *rpc.Message, flush bool) error {
	cn.wmu.Lock()
	defer cn.wmu.Unlock()
	var err error
	cn.scratch, err = rpc.WriteMessage(cn.bw, m, cn.scratch)
	if err != nil {
		return err
	}
	if flush {
		return cn.bw.Flush()
	}
	return nil
}

// pushNotify enqueues a subscription push (called with a shard lock
// held; must not block).
func (cn *conn) pushNotify(c rpc.Change) {
	cn.nmu.Lock()
	cn.nqueue = append(cn.nqueue, c)
	cn.nmu.Unlock()
	cn.ncond.Signal()
}

// notifyLoop drains the notify queue into batched MsgNotify frames —
// asynchronous update propagation, the source of Pequod's eventual
// consistency (§2.4).
func (cn *conn) notifyLoop() {
	for {
		cn.nmu.Lock()
		for len(cn.nqueue) == 0 && !cn.nclosed {
			cn.ncond.Wait()
		}
		if cn.nclosed && len(cn.nqueue) == 0 {
			cn.nmu.Unlock()
			return
		}
		batch := cn.nqueue
		cn.nqueue = nil
		cn.nmu.Unlock()
		if err := cn.write(&rpc.Message{Type: rpc.MsgNotify, Changes: batch}, true); err != nil {
			return
		}
	}
}

func (cn *conn) close() {
	cn.nmu.Lock()
	cn.nclosed = true
	cn.nmu.Unlock()
	cn.ncond.Signal()
	cn.c.Close()
}

// --- remote loader (distributed deployments) ---

// remoteLoader fetches missing base ranges for one shard from home
// servers over peer connections, subscribing for future updates (§2.4,
// §3.3).
type remoteLoader struct {
	sh    *shard.Shard
	peers []*client.Client
	pmap  *partition.Map
}

// ConnectPeers wires this server to its home servers: pmap maps key
// ranges to indexes in addrs, and tables lists the loader-backed base
// tables. Each shard dials its own peer connections, so incoming
// subscription pushes apply to the shard that subscribed.
func (s *Server) ConnectPeers(pmap *partition.Map, addrs []string, tables ...string) error {
	s.pool.SetExternalTables(tables...)
	for i := 0; i < s.pool.NumShards(); i++ {
		sh := s.pool.Shard(i)
		peers := make([]*client.Client, len(addrs))
		for k, a := range addrs {
			c, err := client.Dial(a)
			if err != nil {
				// Connections dialed so far are already in s.peers, so
				// Close tears them down; the server is half-wired and
				// must not serve.
				return err
			}
			c.OnNotify = func(changes []rpc.Change) {
				sh.ApplyBatch(coreChanges(changes))
			}
			peers[k] = c
			s.peers = append(s.peers, c)
		}
		sh.SetLoader(&remoteLoader{sh: sh, peers: peers, pmap: pmap}, tables...)
	}
	return nil
}

// StartLoad implements core.BaseLoader: fetch each home-server piece of
// the range with a subscription, then deliver to the shard's engine.
func (l *remoteLoader) StartLoad(table string, r keys.Range) {
	pieces := l.pmap.Split(r)
	go func() {
		var kvs []core.KV
		futs := make([]*client.Future, len(pieces))
		for i, pc := range pieces {
			futs[i] = l.peers[pc.Owner].ScanAsync(pc.R.Lo, pc.R.Hi, 0, true)
		}
		for _, f := range futs {
			m, err := f.Wait()
			if err != nil || m.Status != rpc.StatusOK {
				continue // the range stays pending-free but absent; a
				// retry will refetch
			}
			for _, kv := range m.KVs {
				kvs = append(kvs, core.KV{Key: kv.Key, Value: kv.Value})
			}
		}
		l.sh.LoadComplete(table, r, kvs)
	}()
}
