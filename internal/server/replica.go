package server

// Per-range replication, member side: warm copies of other members'
// ranges kept fresh through the same subscription machinery the mesh
// uses for join sources, so a repair can promote this member to serve
// a dead peer's range without re-fetching anything.
//
// The coordinator publishes a replica *assignment* (MsgReplicate): the
// cluster view itself plus the replica count and the base tables worth
// copying. Placement is derived, not listed — each member walks the
// ring of distinct member addresses (partition.ReplicaAddrs) and keeps
// a copy of every range whose owner it directly succeeds, so the
// coordinator and every member always agree on who holds what without
// a second source of truth that could drift from the map.
//
// Replica rows are applied through the pool's replica path (no gate
// check, no load accounting) and land on the shard that would own them
// if this member served the range. They are invisible to clients —
// every serving operation re-validates cluster ownership and bounces
// with NotOwner — until a repaired map promotes this member, at which
// point the gate swap alone makes them authoritative
// (shard.Pool.ApplyMapUpdate's promotion case backfills sibling
// shards' forwarded-source copies).
//
// Staleness discipline mirrors subFeed: pushes racing an in-flight
// snapshot are buffered behind it, and both pushes and snapshot rows
// are dropped when the current assignment no longer sources their keys
// from this feed's home — or when the gate says this member now *owns*
// them, so a late replica delivery can never clobber a post-promotion
// write.
//
// A held range is confirmed *synced* only once a full snapshot+
// subscribe pass lands. Unsynced ranges are re-scheduled by every
// assignment apply and by a watchdog tick that also retires failed
// home connections (their push feeds died with them), so neither a
// republished assignment nor a home restart nor an exhausted retry
// loop can leave a copy permanently empty or silently stale.

import (
	"sync"
	"time"

	"pequod/internal/client"
	"pequod/internal/core"
	"pequod/internal/keys"
	"pequod/internal/partition"
	"pequod/internal/rpc"
)

// replView is one generation of the replica assignment.
type replView struct {
	pmap   *partition.Map
	addrs  []string        // serving address per owner index
	self   map[string]bool // addresses that are this process
	copies int             // total copies per range, including the owner's
	tables []string        // base tables replicated (empty = whole ranges)
}

// homeAddr returns the address replica rows for key should come from.
func (v *replView) homeAddr(key string) string { return v.addrs[v.pmap.Owner(key)] }

// replicaState is a member's replication bookkeeping: its current
// assignment, one connection+feed per home it copies from, and the
// ranges it holds.
type replicaState struct {
	s    *Server
	view atomicReplView

	stop     chan struct{} // closed by closeAll; ends the watchdog
	stopOnce sync.Once

	mu    sync.Mutex
	conns map[string]*client.Client // by home address
	feeds map[string]*replFeed      // parallel to conns
	held  map[keys.Range]*replHold  // assigned replica range -> sync state
}

// replHold is one assigned replica range's sync state. The home is
// fixed for the life of the entry — a reassignment replaces the entry —
// so a sync goroutine can verify it still owns its range by pointer
// identity alone. synced flips true only after a full snapshot+subscribe
// pass lands, and back to false when the home connection fails (pushes
// were missed; the copy must re-snapshot). An unsynced entry is
// re-scheduled by every assignment apply and by the watchdog, so no
// failure mode leaves a replica permanently empty or stale.
type replHold struct {
	home    string
	synced  bool
	syncing bool
}

// atomicReplView avoids importing sync/atomic generics clutter inline.
type atomicReplView struct {
	mu sync.Mutex
	v  *replView
}

func (a *atomicReplView) Load() *replView {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.v
}

func (a *atomicReplView) Store(v *replView) {
	a.mu.Lock()
	a.v = v
	a.mu.Unlock()
}

// handleReplicate serves MsgReplicate: adopt a replica assignment and
// reshape the held replica set to match — drop ranges assigned away,
// snapshot+subscribe ranges gained. Idempotent: republishing the same
// assignment diffs to nothing. Assignments older than the one held are
// ignored (a slow coordinator losing to a repair).
func (s *Server) handleReplicate(m *rpc.Message) *rpc.Message {
	next, err := partition.NewEpochVersioned(m.Epoch, m.MapVersion, m.Bounds...)
	if err != nil {
		return rpc.ErrReply(m.Seq, err)
	}
	if len(m.Peers) != next.Servers() {
		return rpc.ErrReply(m.Seq, errReplicatePeers)
	}
	s.applyReplicaAssignment(next, m.Peers, m.Self, m.Limit, m.Tables)
	return rpc.OKReply(m.Seq)
}

var errReplicatePeers = &replError{"replica assignment peer count does not match its map"}

type replError struct{ msg string }

func (e *replError) Error() string { return "pequod server: " + e.msg }

// applyReplicaAssignment installs an assignment and reconciles held
// replicas against it.
func (s *Server) applyReplicaAssignment(next *partition.Map, peers []string, self []int, copies int, tables []string) {
	s.rmu.Lock()
	defer s.rmu.Unlock()
	if s.repl == nil {
		s.repl = &replicaState{
			s:     s,
			stop:  make(chan struct{}),
			conns: make(map[string]*client.Client),
			feeds: make(map[string]*replFeed),
			held:  make(map[keys.Range]*replHold),
		}
		go s.repl.watch()
	}
	st := s.repl
	if cur := st.view.Load(); cur != nil &&
		partition.Compare(next.Epoch(), next.Version(), cur.pmap.Epoch(), cur.pmap.Version()) < 0 {
		return
	}
	nv := &replView{
		pmap: next, addrs: append([]string(nil), peers...),
		self: selfAddrs(peers, self), copies: copies,
		tables: append([]string(nil), tables...),
	}
	// Publish the view before reshaping: feeds filter arrivals against
	// it, so pushes from a home the new assignment demoted die here even
	// while the teardown below is still running.
	st.view.Store(nv)

	desired := make(map[keys.Range]string)
	if copies > 1 {
		for o := 0; o < next.Servers(); o++ {
			home := peers[o]
			if nv.self[home] {
				continue // we serve it; nothing to copy
			}
			mine := false
			for _, a := range partition.ReplicaAddrs(peers, o, copies) {
				if nv.self[a] {
					mine = true
					break
				}
			}
			if !mine {
				continue
			}
			desired[ownerRange(next, o)] = home
		}
	}

	type syncJob struct {
		h     *replHold
		r     keys.Range
		fresh bool
	}
	st.mu.Lock()
	var drop []keys.Range
	var jobs []syncJob
	for r, h := range st.held {
		if desired[r] != h.home {
			delete(st.held, r)
			drop = append(drop, r)
		}
	}
	for r, home := range desired {
		h := st.held[r]
		fresh := h == nil
		if fresh {
			h = &replHold{home: home}
			st.held[r] = h
		}
		// Schedule a sync for every desired range not yet confirmed
		// synced — a fresh grant, an earlier sync that exhausted its
		// attempts, or a copy marked stale by a failed home connection.
		// An identical republish with a sync already in flight adopts it
		// (the goroutine re-reads the view each attempt) instead of
		// cancelling and re-counting held as done.
		if !h.synced && !h.syncing {
			h.syncing = true
			jobs = append(jobs, syncJob{h: h, r: r, fresh: fresh})
		}
	}
	// Retire connections to homes the new assignment no longer copies
	// from.
	want := make(map[string]bool, len(desired))
	for _, home := range desired {
		want[home] = true
	}
	for addr, c := range st.conns {
		if !want[addr] {
			c.Close()
			delete(st.conns, addr)
			delete(st.feeds, addr)
		}
	}
	st.mu.Unlock()

	for _, r := range drop {
		// A range assigned away is a stale copy — except the pieces this
		// member was just promoted to *serve*: those rows are the whole
		// point of replication, and the gate already owns them.
		s.dropUnownedPieces(r)
	}
	for _, j := range jobs {
		if j.fresh {
			// Ghost rows from an earlier stint as this range's replica
			// (or subscriber) would shadow the fresh snapshot; pieces the
			// gate owns (a migration just landed part of this range
			// here) are served data and must survive. Re-scheduled syncs
			// skip this: their possibly-stale copy is still the best
			// available promotion source until a snapshot replaces it
			// (replFeed.complete drops ghosts before applying).
			s.dropUnownedPieces(j.r)
		}
		go st.syncRange(j.h, j.r, j.h.home)
	}
}

// dropUnownedPieces drops r from every shard, sparing the pieces the
// ownership gate says this member serves. The split matters: after a
// bound move, a replica range and an owned range can overlap — a
// whole-range ownership test would see "not (fully) owned" and drop
// freshly spliced served rows along with the stale copy.
func (s *Server) dropUnownedPieces(r keys.Range) {
	g := s.pool.Gate()
	if g == nil {
		s.pool.DropRangeAll(r)
		return
	}
	for _, pc := range g.Map.Split(r) {
		if !g.Self[pc.Owner] {
			s.pool.DropRangeAll(pc.R)
		}
	}
}

// ownerRange returns the key range owner index o serves under m.
func ownerRange(m *partition.Map, o int) keys.Range {
	bounds := m.Bounds()
	var r keys.Range
	if o > 0 {
		r.Lo = bounds[o-1]
	}
	if o < len(bounds) {
		r.Hi = bounds[o]
	}
	return r
}

// subRanges restricts a replica range to the replicated tables (all of
// it when the assignment names none).
func subRanges(r keys.Range, tables []string) []keys.Range {
	if len(tables) == 0 {
		return []keys.Range{r}
	}
	var out []keys.Range
	for _, t := range tables {
		tr := keys.Range{Lo: t + keys.SepString, Hi: keys.PrefixEnd(t + keys.SepString)}
		if sub := tr.Intersect(r); !sub.Empty() {
			out = append(out, sub)
		}
	}
	return out
}

// replicaAttempts bounds snapshot retries per scheduled sync; a range
// still unsynced after them is re-scheduled by the next assignment
// publish or the next watchdog tick, so a failing home is retried
// until it answers or a repair reassigns its ranges.
const replicaAttempts = 4

// replWatchEvery paces the watchdog that retires failed home
// connections and re-schedules unsynced ranges.
const replWatchEvery = 200 * time.Millisecond

// syncRange snapshots+subscribes one assigned replica range at its
// home. Runs on its own goroutine, at most one per held entry (the
// syncing flag). It re-reads the current view each attempt, so a
// republished — even reshaped — assignment that still sources the
// range from the same home is adopted mid-sync rather than cancelling
// it; the range is confirmed synced only after a full pass lands.
func (st *replicaState) syncRange(h *replHold, r keys.Range, home string) {
	defer func() {
		st.mu.Lock()
		h.syncing = false
		st.mu.Unlock()
	}()
	for attempt := 0; attempt < replicaAttempts; attempt++ {
		v := st.view.Load()
		st.mu.Lock()
		live := st.held[r] == h && !h.synced
		st.mu.Unlock()
		if v == nil || !live {
			return // reassigned (or already synced) while we slept
		}
		if st.fetchOnce(v, r, home) {
			st.mu.Lock()
			if st.held[r] == h {
				h.synced = true
			}
			st.mu.Unlock()
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// watch is the replica watchdog: every tick it retires home
// connections that failed (a home restart or TCP reset kills the push
// feed silently — the copy would otherwise go stale while held still
// matched the assignment) and re-schedules a sync for every assigned
// range not confirmed synced, covering both the missed-pushes case and
// syncs that exhausted their attempts between publishes.
func (st *replicaState) watch() {
	t := time.NewTicker(replWatchEvery)
	defer t.Stop()
	for {
		select {
		case <-st.stop:
			return
		case <-t.C:
		}
		st.resync()
	}
}

// resync does one watchdog pass; see watch.
func (st *replicaState) resync() {
	type syncJob struct {
		h *replHold
		r keys.Range
	}
	st.mu.Lock()
	for addr, c := range st.conns {
		if !c.Failed() {
			continue
		}
		c.Close()
		delete(st.conns, addr)
		delete(st.feeds, addr)
		for _, h := range st.held {
			if h.home == addr {
				h.synced = false // pushes were missed; re-snapshot
			}
		}
	}
	var jobs []syncJob
	for r, h := range st.held {
		if !h.synced && !h.syncing {
			h.syncing = true
			jobs = append(jobs, syncJob{h: h, r: r})
		}
	}
	st.mu.Unlock()
	for _, j := range jobs {
		go st.syncRange(j.h, j.r, j.h.home)
	}
}

// fetchOnce runs one snapshot+subscribe pass over the range's
// replicated sub-ranges, reporting whether every piece landed.
func (st *replicaState) fetchOnce(v *replView, r keys.Range, home string) bool {
	c, feed, err := st.conn(home)
	if err != nil {
		return false
	}
	type wait struct {
		p *replPiece
		f *client.Future
	}
	var waits []wait
	for _, sub := range subRanges(r, v.tables) {
		p := feed.register(sub)
		fut := c.ScanSubAsync(sub.Lo, sub.Hi, func(m *rpc.Message) {
			if m.Status == rpc.StatusOK {
				feed.complete(p, m.KVs, true)
			} else {
				feed.complete(p, nil, false)
			}
		})
		waits = append(waits, wait{p: p, f: fut})
	}
	ok := true
	for _, w := range waits {
		m, err := w.f.Wait()
		if err != nil {
			// Transport failure: the callback never ran; release the
			// piece so pushes stop buffering behind it.
			feed.complete(w.p, nil, false)
			ok = false
			continue
		}
		if m.Status != rpc.StatusOK {
			ok = false
		}
	}
	return ok
}

// conn returns the connection+feed to a home, dialing on first use and
// redialing when the cached connection failed (the home restarted, or
// the transport reset). A failed connection means its push feed died
// with it, so every range sourced from the home is marked unsynced —
// the caller's sync (and the watchdog, for ranges nobody is syncing)
// re-snapshots them over the fresh connection.
func (st *replicaState) conn(addr string) (*client.Client, *replFeed, error) {
	st.mu.Lock()
	defer st.mu.Unlock()
	if c, ok := st.conns[addr]; ok {
		if !c.Failed() {
			return c, st.feeds[addr], nil
		}
		c.Close()
		delete(st.conns, addr)
		delete(st.feeds, addr)
		for _, h := range st.held {
			if h.home == addr {
				h.synced = false
			}
		}
	}
	c, err := client.Dial(addr)
	if err != nil {
		return nil, nil, err
	}
	feed := &replFeed{st: st, addr: addr}
	c.OnNotify = feed.notify
	st.conns[addr] = c
	st.feeds[addr] = feed
	return c, feed, nil
}

// upstreamConns returns the connections to every home this member
// copies from. Quiesce fences them like mesh peers: the ping reply is
// ordered after any replica pushes the home had queued on the socket,
// so after the fence every held copy contains every write acknowledged
// before the quiesce — which is what lets a post-quiesce failover
// promote replicas without losing acknowledged writes.
func (st *replicaState) upstreamConns() []*client.Client {
	st.mu.Lock()
	defer st.mu.Unlock()
	out := make([]*client.Client, 0, len(st.conns))
	for _, c := range st.conns {
		out = append(out, c)
	}
	return out
}

// snapshot reports the synced replica ranges (stats): copies actually
// landed, not merely assigned.
func (st *replicaState) snapshot() int {
	st.mu.Lock()
	defer st.mu.Unlock()
	n := 0
	for _, h := range st.held {
		if h.synced {
			n++
		}
	}
	return n
}

// closeAll tears down the replica machinery (server shutdown, drain).
func (st *replicaState) closeAll() {
	st.stopOnce.Do(func() { close(st.stop) })
	st.mu.Lock()
	defer st.mu.Unlock()
	for addr, c := range st.conns {
		c.Close()
		delete(st.conns, addr)
		delete(st.feeds, addr)
	}
	st.held = make(map[keys.Range]*replHold)
}

// replFeed is subFeed's replica twin: it serializes one home
// connection's pushes against the snapshot scans that install its
// subscriptions, applying everything through the pool's replica path.
type replFeed struct {
	st     *replicaState
	addr   string
	mu     sync.Mutex
	pieces []*replPiece
}

// replPiece is one in-flight snapshot range and the pushes buffered
// behind it.
type replPiece struct {
	r   keys.Range
	buf []core.Change
}

func (fd *replFeed) register(r keys.Range) *replPiece {
	p := &replPiece{r: r}
	fd.mu.Lock()
	fd.pieces = append(fd.pieces, p)
	fd.mu.Unlock()
	return p
}

// fresh reports whether a key's replica rows should still come from
// this feed's home: the current assignment sources it here, and the
// gate does not say this member owns it (a promotion makes local
// writes authoritative; a late replica delivery must not clobber
// them).
func (fd *replFeed) fresh(key string) bool {
	v := fd.st.view.Load()
	if v == nil || v.homeAddr(key) != fd.addr {
		return false
	}
	if g := fd.st.s.pool.Gate(); g != nil && g.OwnsKey(key) {
		return false
	}
	return true
}

// notify is the home connection's OnNotify: filter stale keys, buffer
// behind in-flight snapshots, apply the rest.
func (fd *replFeed) notify(changes []rpc.Change) {
	out := coreChanges(changes)
	fresh := out[:0]
	for _, c := range out {
		if fd.fresh(c.Key) {
			fresh = append(fresh, c)
		}
	}
	out = fresh
	fd.mu.Lock()
	if len(fd.pieces) > 0 {
		direct := out[:0]
		for _, c := range out {
			buffered := false
			for _, p := range fd.pieces {
				if p.r.Contains(c.Key) {
					p.buf = append(p.buf, c)
					buffered = true
					break
				}
			}
			if !buffered {
				direct = append(direct, c)
			}
		}
		out = direct
	}
	fd.mu.Unlock()
	if len(out) > 0 {
		fd.st.s.pool.ApplyReplica(out)
	}
}

// complete lands a snapshot: apply its rows, then the pushes buffered
// behind it, and release the piece. Staleness is re-checked per key —
// the assignment (or the gate) may have moved on while the snapshot
// was in flight. ok distinguishes a successful (possibly empty)
// snapshot from a failed scan: a successful one is the home's full
// state for the piece, so the old copy is dropped first — rows the
// snapshot lacks are deletions this feed missed while unsubscribed (a
// home restart, a resync) and must not survive as ghosts. A failed
// scan keeps whatever copy exists: still the best promotion source
// until a retry replaces it.
func (fd *replFeed) complete(p *replPiece, kvs []core.KV, ok bool) {
	fd.mu.Lock()
	found := false
	for i, q := range fd.pieces {
		if q == p {
			fd.pieces = append(fd.pieces[:i], fd.pieces[i+1:]...)
			found = true
			break
		}
	}
	buf := p.buf
	p.buf = nil
	fd.mu.Unlock()
	if !found {
		return
	}
	if ok {
		fd.st.s.dropUnownedPieces(p.r)
	}
	changes := make([]core.Change, 0, len(kvs)+len(buf))
	for _, kv := range kvs {
		if fd.fresh(kv.Key) {
			changes = append(changes, core.Change{Op: core.OpPut, Key: kv.Key, Value: kv.Value})
		}
	}
	for _, c := range buf {
		if fd.fresh(c.Key) {
			changes = append(changes, c)
		}
	}
	if len(changes) > 0 {
		fd.st.s.pool.ApplyReplica(changes)
	}
}
