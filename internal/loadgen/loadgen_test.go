package loadgen

import (
	"context"
	"testing"
	"time"
)

// TestOpenLoopUnderChaos is the tentpole property: an open-loop load —
// 100k simulated users, Zipf celebrity skew, a fixed arrival rate the
// generator never slackens — sustained across the full chaos script
// (steady state, live join, drain, bound migration, warm restart, and
// a member kill repaired automatically by the failure detector) with
// the online checker auditing tracked timelines throughout and a
// zero-budget final sweep at the end. Zero violations means no lost
// acknowledged writes, no out-of-budget staleness, no phantoms,
// duplicates, or payload corruption — while every topology change the
// Admin API supports happened under fire. Scaled down in duration
// (not in universe size) so it runs raced in CI.
func TestOpenLoopUnderChaos(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-second cluster scenario")
	}
	ctx, cancel := context.WithTimeout(context.Background(), 4*time.Minute)
	defer cancel()

	phaseDur := 600 * time.Millisecond
	cfg := Config{
		Users:       100_000,
		ActiveUsers: 1200,
		Follows:     8,
		TrackEvery:  8,
		Rate:        400,
		Seed:        1,
		Workers:     8,
		// Budget generous under -race on loaded CI machines: the final
		// zero-budget sweep is the authoritative lost-write check; the
		// online budget still catches gross staleness mid-run.
		Budget:  10 * time.Second,
		Phases:  StandardPhases(phaseDur),
		Servers: 4,
		DataDir: t.TempDir(),
		Logf:    t.Logf,
		// Detector tolerance generous under -race on loaded machines:
		// at the 25ms×3 default a race-mode scheduling pause reads as
		// death, and a false repair cold-promotes ranges away from live
		// members — the kill phase extends until repair regardless.
		FailoverInterval: 100 * time.Millisecond,
		FailoverMisses:   5,
	}
	rep, err := Run(ctx, cfg)
	if err != nil {
		t.Fatal(err)
	}

	if rep.Checker.Violations != 0 {
		t.Fatalf("checker violations (%d): %v", rep.Checker.Violations, rep.Checker.Samples)
	}
	if rep.Checker.TrackedUsers == 0 || rep.Checker.PostsTracked == 0 {
		t.Fatalf("checker tracked nothing: %+v", rep.Checker)
	}
	if rep.Checker.PostsAcked == 0 || rep.Checker.ChecksAudited == 0 || rep.Checker.RowsVerified == 0 {
		t.Fatalf("checker audited nothing: %+v", rep.Checker)
	}
	if len(rep.Phases) != len(cfg.Phases) {
		t.Fatalf("phase reports = %d, want %d", len(rep.Phases), len(cfg.Phases))
	}
	for _, ph := range rep.Phases {
		if ph.Offered == 0 {
			t.Fatalf("phase %q: open-loop clock offered nothing", ph.Name)
		}
		if ph.Completed == 0 {
			t.Fatalf("phase %q: nothing completed (event=%q errors=%d shed=%d)",
				ph.Name, ph.Event, ph.Errors, ph.Shed)
		}
		if ph.Completed > 0 && (ph.P50us == 0 || ph.P99us < ph.P50us || ph.P999us < ph.P99us || ph.MaxUs < ph.P999us) {
			t.Fatalf("phase %q: malformed latency tail %+v", ph.Name, ph)
		}
		if ph.DurationSec < phaseDur.Seconds()*0.9 {
			t.Fatalf("phase %q: duration %.3fs below scripted %.3fs", ph.Name, ph.DurationSec, phaseDur.Seconds())
		}
	}
	// The arrival clock must not have slackened: total offered over the
	// run tracks rate × time (it can exceed it slightly — phases extend
	// when an event outlasts the script — never collapse below it).
	var offered int64
	var totalSec float64
	for _, ph := range rep.Phases {
		offered += ph.Offered
		totalSec += ph.DurationSec
	}
	if float64(offered) < cfg.Rate*totalSec*0.8 {
		t.Fatalf("offered %d ops over %.1fs; open-loop clock slackened below %v/s", offered, totalSec, cfg.Rate)
	}
	if rep.Seed != cfg.Seed || !rep.Durable || rep.Users != cfg.Users {
		t.Fatalf("report config echo wrong: %+v", rep)
	}
	if len(rep.JSON()) == 0 {
		t.Fatal("empty JSON report")
	}
	t.Logf("open-loop: %d offered, checker: %d posts tracked, %d checks audited, %d rows verified, lag p99 %dµs",
		offered, rep.Checker.PostsTracked, rep.Checker.ChecksAudited, rep.Checker.RowsVerified, rep.Checker.LagP99us)

	// Bounded phase: the measured freshness distribution feeds back as
	// the empirical per-read budget — every read now rides the bounded
	// path sized to the lag p99 the fresh run actually observed, and
	// the checker audits the budgets end to end (absence grace loosens
	// by exactly the read budget; payloads and phantoms stay strict).
	empirical := time.Duration(rep.Checker.LagP99us) * time.Microsecond
	if empirical < 5*time.Millisecond {
		empirical = 5 * time.Millisecond // floor: p99 of 0 means reads never caught a row in flight
	}
	bcfg := cfg
	bcfg.Seed = cfg.Seed + 1
	bcfg.DataDir = t.TempDir()
	bcfg.ReadStale = empirical
	bcfg.Phases = []Phase{
		{Name: "bounded-steady", Duration: phaseDur},
		{Name: "bounded-rebalance", Duration: phaseDur, Event: EventRebalance},
	}
	t.Logf("bounded phase: empirical per-read budget %v (lag p99 %dµs)", empirical, rep.Checker.LagP99us)
	brep, err := Run(ctx, bcfg)
	if err != nil {
		t.Fatal(err)
	}
	if brep.Checker.Violations != 0 {
		t.Fatalf("bounded-phase violations (%d): %v", brep.Checker.Violations, brep.Checker.Samples)
	}
	if brep.Checker.BoundedChecks == 0 {
		t.Fatalf("bounded phase audited no bounded reads: %+v", brep.Checker)
	}
	if brep.ReadStaleMs != empirical.Milliseconds() {
		t.Fatalf("bounded-phase report echo wrong: %d != %d", brep.ReadStaleMs, empirical.Milliseconds())
	}
	t.Logf("bounded phase: %d bounded checks, %d rows verified, lag p99 %dµs",
		brep.Checker.BoundedChecks, brep.Checker.RowsVerified, brep.Checker.LagP99us)
}

// Config validation must reject scripts the runner can't honor.
func TestRunnerConfigValidation(t *testing.T) {
	ctx := context.Background()
	cases := []struct {
		name string
		cfg  Config
	}{
		{"unknown event", Config{Phases: []Phase{{Name: "x", Event: "explode"}}}},
		{"restart without durability", Config{Phases: []Phase{{Name: "x", Event: EventRestart}}}},
		{"kill in connect mode", Config{
			Addrs:  []string{"127.0.0.1:1"},
			Phases: []Phase{{Name: "x", Event: EventKill}}}},
		{"join in connect mode", Config{
			Addrs:  []string{"127.0.0.1:1"},
			Phases: []Phase{{Name: "x", Event: EventJoin}}}},
	}
	for _, tc := range cases {
		if _, err := Run(ctx, tc.cfg); err == nil {
			t.Errorf("%s: accepted", tc.name)
		}
	}
}
