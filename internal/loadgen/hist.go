package loadgen

import (
	"math/bits"
	"sync/atomic"
)

// HDR-style log-linear latency histogram: values (microseconds) bucket
// by power-of-two magnitude with histSub linear sub-buckets per
// magnitude, giving ~3% relative error across nine decades in a fixed
// 2048-cell array. Recording is one atomic add — no locks, no
// allocation — so workers on the open-loop hot path never serialize on
// measurement, and a live reporter can read a consistent-enough view
// mid-run without stopping the world.
const (
	histSubBits = 5
	histSub     = 1 << histSubBits // 32 sub-buckets: ~3% relative error
	histCells   = 2048             // covers values up to 2^63 µs
)

// Hist is one lock-free histogram. The zero value is ready to use.
type Hist struct {
	counts [histCells]atomic.Int64
	total  atomic.Int64
	sum    atomic.Int64
	max    atomic.Int64
}

// histIndex maps a value to its cell: values below histSub map
// linearly, larger values to (magnitude, sub-bucket) pairs.
func histIndex(v int64) int {
	if v < 0 {
		v = 0
	}
	exp := bits.Len64(uint64(v) >> histSubBits)
	i := exp*histSub + int(v>>uint(exp))
	if i >= histCells {
		i = histCells - 1
	}
	return i
}

// histValue returns the representative (midpoint) value of cell i.
func histValue(i int) int64 {
	exp := i / histSub
	sub := int64(i % histSub)
	if exp == 0 {
		return sub
	}
	return sub<<uint(exp) + 1<<uint(exp-1)
}

// Record adds one observation.
func (h *Hist) Record(v int64) {
	h.counts[histIndex(v)].Add(1)
	h.total.Add(1)
	h.sum.Add(v)
	for {
		m := h.max.Load()
		if v <= m || h.max.CompareAndSwap(m, v) {
			return
		}
	}
}

// Count returns the number of observations.
func (h *Hist) Count() int64 { return h.total.Load() }

// Snapshot folds h into a plain, mergeable copy.
func (h *Hist) Snapshot() *HistSnapshot {
	s := &HistSnapshot{Total: h.total.Load(), Sum: h.sum.Load(), Max: h.max.Load()}
	for i := range h.counts {
		s.Counts[i] = h.counts[i].Load()
	}
	return s
}

// HistSnapshot is an immutable merged view with quantile math.
type HistSnapshot struct {
	Counts [histCells]int64
	Total  int64
	Sum    int64
	Max    int64
}

// Merge adds o into s.
func (s *HistSnapshot) Merge(o *HistSnapshot) {
	for i := range s.Counts {
		s.Counts[i] += o.Counts[i]
	}
	s.Total += o.Total
	s.Sum += o.Sum
	if o.Max > s.Max {
		s.Max = o.Max
	}
}

// Quantile returns the value at quantile q in [0, 1] (0 when empty).
// The exact recorded maximum is reported for the top cell, so
// Quantile(1) == Max.
func (s *HistSnapshot) Quantile(q float64) int64 {
	if s.Total == 0 {
		return 0
	}
	rank := int64(q*float64(s.Total) + 0.5)
	if rank < 1 {
		rank = 1
	}
	if rank > s.Total {
		rank = s.Total
	}
	var seen int64
	last := 0
	for i, c := range s.Counts {
		if c == 0 {
			continue
		}
		seen += c
		last = i
		if seen >= rank {
			break
		}
	}
	v := histValue(last)
	if v > s.Max {
		v = s.Max
	}
	return v
}

// Mean returns the average recorded value (0 when empty).
func (s *HistSnapshot) Mean() float64 {
	if s.Total == 0 {
		return 0
	}
	return float64(s.Sum) / float64(s.Total)
}

// ShardedHist spreads recording across independent histograms so
// concurrent workers never contend on the same cache lines; worker i
// records into shard i%n. Merge folds every shard for reporting.
type ShardedHist struct {
	shards []*Hist
}

// NewShardedHist builds an n-way sharded histogram (n < 1 means 1).
func NewShardedHist(n int) *ShardedHist {
	if n < 1 {
		n = 1
	}
	sh := &ShardedHist{shards: make([]*Hist, n)}
	for i := range sh.shards {
		sh.shards[i] = &Hist{}
	}
	return sh
}

// Record adds v on behalf of the given worker.
func (sh *ShardedHist) Record(worker int, v int64) {
	sh.shards[worker%len(sh.shards)].Record(v)
}

// Count sums observations across shards.
func (sh *ShardedHist) Count() int64 {
	var n int64
	for _, h := range sh.shards {
		n += h.Count()
	}
	return n
}

// Merge folds all shards into one snapshot.
func (sh *ShardedHist) Merge() *HistSnapshot {
	out := sh.shards[0].Snapshot()
	for _, h := range sh.shards[1:] {
		out.Merge(h.Snapshot())
	}
	return out
}
