package loadgen

import "math/rand"

// Universe is a procedurally generated social graph over Users ids:
// nothing is stored per user, so a universe of millions costs a few
// words. Every derived quantity — who user u follows, who posts next —
// comes from the configured seed alone, which makes any run
// reproducible from its printed seed (a failing checker run replays
// exactly).
//
// Celebrity skew: follow targets and post authors are both drawn from
// the same Zipf distribution (the s=1.3 shape internal/twip uses for
// its stored graph) pushed through one shared pseudo-random
// permutation of the id space. Low Zipf ranks land on the same small
// permuted id set for both draws, so the heavily-followed users are
// also the heavy posters — the §2.3 celebrity regime — while the
// permutation keeps those hot ids scattered across partition bounds
// instead of clustered at u0000000.
type Universe struct {
	Users int32
	seed  int64
	// permA/permB define the multiplicative permutation
	// id = (permA*rank + permB) mod Users; permA is odd-driven
	// coprime with Users so the map is a bijection.
	permA int64
	permB int64
	// follows is the mean followee-set size.
	follows int
}

// NewUniverse builds a universe of n users with mean followee-set size
// follows, fully determined by seed.
func NewUniverse(n int32, follows int, seed int64) *Universe {
	if n < 2 {
		n = 2
	}
	if follows < 1 {
		follows = 1
	}
	u := &Universe{Users: n, seed: seed, follows: follows}
	rng := rand.New(rand.NewSource(seed ^ 0x5eed1e55))
	for {
		u.permA = 2*rng.Int63n(int64(n)) + 1 // odd
		if gcd(u.permA, int64(n)) == 1 {
			break
		}
	}
	u.permB = rng.Int63n(int64(n))
	return u
}

func gcd(a, b int64) int64 {
	for b != 0 {
		a, b = b, a%b
	}
	return a
}

// permute maps a Zipf rank to a scattered user id.
func (u *Universe) permute(rank uint64) int32 {
	return int32((u.permA*int64(rank%uint64(u.Users)) + u.permB) % int64(u.Users))
}

// NewPosterSampler returns a Zipf-skewed poster sampler for one worker.
// Samplers drawing from the same universe agree on which ids are hot;
// distinct rngs keep workers independent.
func (u *Universe) NewPosterSampler(rng *rand.Rand) *PosterSampler {
	return &PosterSampler{u: u, zipf: rand.NewZipf(rng, 1.3, 4, uint64(u.Users-1)), rng: rng}
}

// PosterSampler draws post authors with celebrity skew.
type PosterSampler struct {
	u    *Universe
	zipf *rand.Zipf
	rng  *rand.Rand
}

// Sample returns the next post author.
func (ps *PosterSampler) Sample() int32 { return ps.u.permute(ps.zipf.Uint64()) }

// Followees derives user id's followee set: size varies around the
// universe mean, targets are Zipf-skewed toward the same celebrities
// the poster sampler favors, and the result depends only on (seed, id)
// — calling it twice, in any process, yields the same set.
func (u *Universe) Followees(id int32) []int32 {
	rng := rand.New(rand.NewSource(u.seed ^ (int64(id)+1)*0x5851f42d4c957f2d))
	n := u.follows/2 + rng.Intn(u.follows+1) // mean ≈ follows
	if n < 1 {
		n = 1
	}
	zipf := rand.NewZipf(rng, 1.3, 4, uint64(u.Users-1))
	out := make([]int32, 0, n)
	seen := make(map[int32]bool, n)
	for tries := 0; len(out) < n && tries < 4*n+16; tries++ {
		p := u.permute(zipf.Uint64())
		if p == id || seen[p] {
			continue
		}
		seen[p] = true
		out = append(out, p)
	}
	return out
}

// ActiveUser maps an active-pool index to a user id. Indexes map to
// the low Zipf ranks, so the reader pool overlaps the celebrity set —
// hot readers and hot writers coincide, as they do in production — and
// the permutation scatters those ids across partition bounds. The map
// is injective for i < Users, so active users are distinct.
func (u *Universe) ActiveUser(i int) int32 {
	return u.permute(uint64(i))
}
