package loadgen

import (
	"strings"
	"testing"
	"time"

	"pequod/internal/core"
)

// The checker fixtures are red-green tests of the oracle itself: a
// fake store presents doctored scan results and each class of damage
// must be flagged — a checker that cannot fail proves nothing.

// fixtureChecker: one tracked user (1) following posters 10 and 11.
func fixtureChecker(budget time.Duration) *Checker {
	return NewChecker(budget, []int32{1}, func(id int32) []int32 {
		if id == 1 {
			return []int32{10, 11}
		}
		return nil
	})
}

func kvsFor(rows ...[2]string) []core.KV {
	var out []core.KV
	for _, r := range rows {
		out = append(out, core.KV{Key: r[0], Value: r[1]})
	}
	return out
}

func violationCount(t *testing.T, c *Checker, kind string) int64 {
	t.Helper()
	return c.Report().ViolationKinds[kind]
}

// Green path: an acknowledged post that shows up with the right
// payload produces zero violations.
func TestCheckerGreenPath(t *testing.T) {
	c := fixtureChecker(time.Second)
	c.PostIssued(10, 5, "hello")
	c.PostAcked(10, 5)
	key := timelineKey(1, 5, 10)
	c.OnCheck(1, 0, kvsFor([2]string{key, "hello"}), time.Now())
	rep := c.Report()
	if rep.Violations != 0 {
		t.Fatalf("clean read flagged: %+v", rep.Samples)
	}
	if rep.RowsVerified != 1 || rep.PostsTracked != 1 || rep.PostsAcked != 1 {
		t.Fatalf("bookkeeping off: %+v", rep)
	}
}

// Red: a lost acknowledged write — acked longer than the budget ago,
// absent from a covering scan — must be flagged missing.
func TestCheckerFlagsLostAcknowledgedWrite(t *testing.T) {
	c := fixtureChecker(10 * time.Millisecond)
	c.PostIssued(10, 5, "hello")
	c.PostAcked(10, 5)
	// A read starting well past the budget sees an empty timeline.
	read := time.Now().Add(50 * time.Millisecond)
	c.OnCheck(1, 0, nil, read)
	if n := violationCount(t, c, "missing"); n != 1 {
		t.Fatalf("lost acked write not flagged: missing=%d report=%+v", n, c.Report().Samples)
	}
	// The loss is counted once, not once per subsequent scan.
	c.OnCheck(1, 0, nil, read.Add(time.Second))
	if n := violationCount(t, c, "missing"); n != 1 {
		t.Fatalf("lost write double-counted: missing=%d", n)
	}
}

// Red: a stale-but-within-budget read is NOT a violation — it feeds
// the freshness-lag distribution; past the budget it becomes one.
func TestCheckerStalenessBudgetBoundary(t *testing.T) {
	c := fixtureChecker(100 * time.Millisecond)
	c.PostIssued(10, 7, "x")
	c.PostAcked(10, 7)
	c.OnCheck(1, 0, nil, time.Now().Add(20*time.Millisecond)) // inside budget
	rep := c.Report()
	if rep.Violations != 0 {
		t.Fatalf("within-budget staleness flagged: %+v", rep.Samples)
	}
	if rep.LagObservations != 1 {
		t.Fatalf("lag not recorded: %+v", rep)
	}
	c.OnCheck(1, 0, nil, time.Now().Add(500*time.Millisecond)) // beyond budget
	if n := violationCount(t, c, "missing"); n != 1 {
		t.Fatalf("beyond-budget staleness not flagged: %+v", c.Report())
	}
}

// Red: a scan that misses the row's time range must NOT flag it; the
// scan never covered the row.
func TestCheckerScanCoverage(t *testing.T) {
	c := fixtureChecker(time.Millisecond)
	c.PostIssued(10, 5, "x")
	c.PostAcked(10, 5)
	c.OnCheck(1, 6, nil, time.Now().Add(time.Second)) // covers times ≥ 6 only
	if rep := c.Report(); rep.Violations != 0 {
		t.Fatalf("uncovered row flagged: %+v", rep.Samples)
	}
}

// Red: a duplicated row in one scan result must be flagged.
func TestCheckerFlagsDuplicateRow(t *testing.T) {
	c := fixtureChecker(time.Second)
	c.PostIssued(10, 5, "hello")
	c.PostAcked(10, 5)
	key := timelineKey(1, 5, 10)
	c.OnCheck(1, 0, kvsFor([2]string{key, "hello"}, [2]string{key, "hello"}), time.Now())
	if n := violationCount(t, c, "duplicate"); n != 1 {
		t.Fatalf("duplicated row not flagged: %+v", c.Report())
	}
}

// Red: a row the user should never see must be flagged phantom.
func TestCheckerFlagsPhantomRow(t *testing.T) {
	c := fixtureChecker(time.Second)
	c.OnCheck(1, 0, kvsFor([2]string{timelineKey(1, 9, 10), "never posted"}), time.Now())
	if n := violationCount(t, c, "phantom"); n != 1 {
		t.Fatalf("phantom row not flagged: %+v", c.Report())
	}
}

// Red: right key, wrong payload.
func TestCheckerFlagsValueMismatch(t *testing.T) {
	c := fixtureChecker(time.Second)
	c.PostIssued(10, 5, "hello")
	c.PostAcked(10, 5)
	c.OnCheck(1, 0, kvsFor([2]string{timelineKey(1, 5, 10), "tampered"}), time.Now())
	if n := violationCount(t, c, "mismatch"); n != 1 {
		t.Fatalf("payload mismatch not flagged: %+v", c.Report())
	}
	if s := c.Report().Samples[0]; !strings.Contains(s, "mismatch") {
		t.Fatalf("sample lacks kind: %q", s)
	}
}

// A failed write is ambiguous: both presence and absence are
// accepted, but a tampered payload is still a violation.
func TestCheckerFailedWriteIsAmbiguous(t *testing.T) {
	c := fixtureChecker(time.Millisecond)
	c.PostIssued(10, 5, "hello")
	c.PostFailed(10, 5)
	read := time.Now().Add(time.Second)
	c.OnCheck(1, 0, nil, read)                                               // absent: fine
	c.OnCheck(1, 0, kvsFor([2]string{timelineKey(1, 5, 10), "hello"}), read) // present: fine
	if rep := c.Report(); rep.Violations != 0 {
		t.Fatalf("failed write flagged: %+v", rep.Samples)
	}
	c.OnCheck(1, 0, kvsFor([2]string{timelineKey(1, 5, 10), "oops"}), read)
	if n := violationCount(t, c, "mismatch"); n != 1 {
		t.Fatalf("tampered failed write not flagged: %+v", c.Report())
	}
}

// A pending (unacknowledged) write must never be judged missing, even
// far beyond the budget — the client was never told it succeeded.
func TestCheckerPendingWriteNeverMissing(t *testing.T) {
	c := fixtureChecker(time.Millisecond)
	c.PostIssued(10, 5, "hello")
	c.OnCheck(1, 0, nil, time.Now().Add(time.Hour))
	if rep := c.Report(); rep.Violations != 0 {
		t.Fatalf("pending write flagged: %+v", rep.Samples)
	}
}

// FinalSweep is the zero-budget audit: any absent acknowledged row is
// an immediate violation.
func TestCheckerFinalSweepZeroBudget(t *testing.T) {
	c := fixtureChecker(time.Hour) // generous online budget
	c.PostIssued(10, 5, "hello")
	c.PostAcked(10, 5)
	c.PostIssued(11, 6, "there")
	c.PostAcked(11, 6)
	c.FinalSweep(1, kvsFor([2]string{timelineKey(1, 5, 10), "hello"}), time.Now())
	if n := violationCount(t, c, "missing"); n != 1 {
		t.Fatalf("final sweep let a missing acked row pass: %+v", c.Report())
	}
}

// Untracked users are invisible to the checker.
func TestCheckerIgnoresUntracked(t *testing.T) {
	c := fixtureChecker(time.Second)
	c.OnCheck(99, 0, kvsFor([2]string{timelineKey(99, 5, 10), "whatever"}), time.Now())
	rep := c.Report()
	if rep.Violations != 0 || rep.ChecksAudited != 0 {
		t.Fatalf("untracked user audited: %+v", rep)
	}
	if c.Tracked(99) || !c.Tracked(1) {
		t.Fatal("Tracked() wrong")
	}
}
