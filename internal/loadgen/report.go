package loadgen

import (
	"encoding/json"
	"time"

	"pequod/internal/twip"
)

// Report is the machine-readable result of one open-loop run: the
// configuration that produced it (seed first — any run replays from
// it), per-phase latency/throughput, and the checker's verdict. The
// full-scale run's report is committed as BENCH_9.json.
type Report struct {
	Seed        int64    `json:"seed"`
	Users       int      `json:"users"`
	ActiveUsers int      `json:"active_users"`
	Follows     int      `json:"follows"`
	Mix         twip.Mix `json:"mix"`
	OfferedRate float64  `json:"offered_rate_ops_per_sec"`
	Workers     int      `json:"workers"`
	Servers     int      `json:"servers"`
	Replicas    int      `json:"replicas"`
	Durable     bool     `json:"durable"`
	BudgetMs    int64    `json:"staleness_budget_ms"`
	ReadStaleMs int64    `json:"read_stale_ms,omitempty"`
	DualRead    bool     `json:"dual_read,omitempty"`
	ElapsedSec  float64  `json:"elapsed_sec"`

	Phases  []PhaseReport `json:"phases"`
	Checker CheckerReport `json:"checker"`
}

// PhaseReport carries one phase's throughput and latency tail. Offered
// counts operations scheduled by the open-loop clock during the phase;
// Completed counts operations that finished (and were attributed to
// the phase that scheduled them); Shed counts arrivals dropped because
// the dispatch queue was full — under overload the harness sheds
// rather than silently turning closed-loop. Latency is measured from
// the scheduled arrival time, not the dequeue time, so queueing delay
// is charged to the operation (no coordinated omission).
type PhaseReport struct {
	Name         string  `json:"name"`
	Event        string  `json:"event,omitempty"`
	DurationSec  float64 `json:"duration_sec"`
	Offered      int64   `json:"offered"`
	Completed    int64   `json:"completed"`
	Errors       int64   `json:"errors"`
	Shed         int64   `json:"shed"`
	OfferedRate  float64 `json:"offered_rate_ops_per_sec"`
	AchievedRate float64 `json:"achieved_rate_ops_per_sec"`
	P50us        int64   `json:"p50_us"`
	P99us        int64   `json:"p99_us"`
	P999us       int64   `json:"p999_us"`
	MaxUs        int64   `json:"max_us"`
	MeanUs       float64 `json:"mean_us"`
}

// phaseReport folds one phase's counters and histogram.
func phaseReport(name, event string, elapsed time.Duration, offered, completed, errors, shed int64, h *ShardedHist) PhaseReport {
	s := h.Merge()
	secs := elapsed.Seconds()
	pr := PhaseReport{
		Name:        name,
		Event:       event,
		DurationSec: secs,
		Offered:     offered,
		Completed:   completed,
		Errors:      errors,
		Shed:        shed,
		P50us:       s.Quantile(0.50),
		P99us:       s.Quantile(0.99),
		P999us:      s.Quantile(0.999),
		MaxUs:       s.Max,
		MeanUs:      s.Mean(),
	}
	if secs > 0 {
		pr.OfferedRate = float64(offered) / secs
		pr.AchievedRate = float64(completed) / secs
	}
	return pr
}

// JSON renders the report, indented for committing and diffing.
func (r *Report) JSON() []byte {
	b, err := json.MarshalIndent(r, "", "  ")
	if err != nil { // a plain-data struct cannot fail to marshal
		panic(err)
	}
	return append(b, '\n')
}
