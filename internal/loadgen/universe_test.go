package loadgen

import (
	"math/rand"
	"reflect"
	"testing"
)

// The universe must be a pure function of its seed: same seed, same
// graph; different seed, different graph.
func TestUniverseDeterminism(t *testing.T) {
	a := NewUniverse(100_000, 8, 42)
	b := NewUniverse(100_000, 8, 42)
	for _, id := range []int32{0, 1, 7, 999, 99_999} {
		if !reflect.DeepEqual(a.Followees(id), b.Followees(id)) {
			t.Fatalf("user %d: followee sets diverge across identically-seeded universes", id)
		}
		if len(a.Followees(id)) == 0 {
			t.Fatalf("user %d: empty followee set", id)
		}
		for _, p := range a.Followees(id) {
			if p == id {
				t.Fatalf("user %d follows itself", id)
			}
			if p < 0 || p >= a.Users {
				t.Fatalf("user %d follows out-of-range %d", id, p)
			}
		}
	}
	c := NewUniverse(100_000, 8, 43)
	same := 0
	for id := int32(0); id < 50; id++ {
		if reflect.DeepEqual(a.Followees(id), c.Followees(id)) {
			same++
		}
	}
	if same > 5 {
		t.Fatalf("different seeds produced %d/50 identical followee sets", same)
	}
}

// ActiveUser must be injective (per-user harness state is indexed by
// active slot) and scattered, not packed into low ids.
func TestUniverseActiveUsers(t *testing.T) {
	u := NewUniverse(100_000, 8, 7)
	seen := make(map[int32]bool)
	low := 0
	for i := 0; i < 5000; i++ {
		id := u.ActiveUser(i)
		if id < 0 || id >= u.Users {
			t.Fatalf("active[%d] = %d out of range", i, id)
		}
		if seen[id] {
			t.Fatalf("active[%d] = %d repeats", i, id)
		}
		seen[id] = true
		if id < 5000 {
			low++
		}
	}
	if low > 1000 {
		t.Fatalf("%d/5000 active users packed into the low id range", low)
	}
}

// Celebrity alignment: the ids the poster sampler favors must be the
// ids followee sets favor — otherwise tracked timelines stay empty and
// the celebrity regime never materializes.
func TestUniverseCelebrityAlignment(t *testing.T) {
	u := NewUniverse(50_000, 10, 11)
	ps := u.NewPosterSampler(rand.New(rand.NewSource(99)))
	postCount := make(map[int32]int)
	for i := 0; i < 200_000; i++ {
		postCount[ps.Sample()]++
	}
	// Top posters by mass.
	hot := make(map[int32]bool)
	for id, n := range postCount {
		if n >= 2000 { // ≥1% of posts each: true celebrities
			hot[id] = true
		}
	}
	if len(hot) == 0 {
		t.Fatal("no celebrity posters: sampler is not skewed")
	}
	// A large share of users must follow at least one hot poster.
	following := 0
	const users = 2000
	for i := 0; i < users; i++ {
		for _, p := range u.Followees(u.ActiveUser(i)) {
			if hot[p] {
				following++
				break
			}
		}
	}
	if following < users/4 {
		t.Fatalf("only %d/%d active users follow a celebrity poster; skews are misaligned", following, users)
	}
}
