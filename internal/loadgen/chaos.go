package loadgen

import (
	"context"
	"fmt"
	"net"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"time"

	"pequod/internal/cluster"
	"pequod/internal/core"
	"pequod/internal/partition"
	"pequod/internal/server"
	"pequod/internal/twip"
)

// boundsFor splits the keyspace for n servers: member 0 owns the base
// tables (p| posts, s| subscriptions — every post fans out from
// there), members 1..n-1 split the computed t| timelines by user, so
// joins always straddle members and timeline reads spread across the
// fleet.
func boundsFor(n, users int) []string {
	if n <= 1 {
		return nil
	}
	bounds := []string{"t|"}
	if n > 2 {
		bounds = append(bounds, partition.UserBounds(n-1, users, 7, "u", "t")...)
	}
	return bounds
}

// serverConfig is one self-contained member's shape. With a data dir
// the member is durable, fsyncing fast enough that a graceful close
// never races the flush loop and snapshotting often enough that a
// warm restart replays snapshot+log (mirroring the cluster suite's
// durable configuration).
func (r *Runner) serverConfig(name string) (server.Config, error) {
	cfg := server.Config{Name: name}
	if r.cfg.DataDir != "" {
		dir := filepath.Join(r.cfg.DataDir, name)
		if err := os.MkdirAll(dir, 0o777); err != nil {
			return cfg, err
		}
		cfg.DataDir = dir
		cfg.SyncInterval = 2 * time.Millisecond
		cfg.SnapshotInterval = 100 * time.Millisecond
		cfg.ScrubInterval = -1
		cfg.CompactInterval = -1
	}
	return cfg, nil
}

// setup builds the cluster (self-contained mode) or connects to one,
// installs the Twip joins, and loads the active pool's subscription
// graph — the frozen followee sets the checker's expectations are
// derived from.
func (r *Runner) setup(ctx context.Context) error {
	addrs := r.cfg.Addrs
	if len(addrs) == 0 {
		addrs = make([]string, r.cfg.Servers)
		for i := range addrs {
			name := fmt.Sprintf("lg%d", i)
			scfg, err := r.serverConfig(name)
			if err != nil {
				return err
			}
			s, err := server.New(scfg)
			if err != nil {
				return err
			}
			addr, err := s.Start()
			if err != nil {
				s.Close()
				return err
			}
			r.servers[addr] = s
			r.dirs[addr] = scfg.DataDir
			addrs[i] = addr
		}
		// The last member warm-restarts, the second-to-last dies for
		// good; both are timeline owners, so their ranges carry live
		// computed state when the event lands.
		r.restartAddr = addrs[len(addrs)-1]
		if len(addrs) >= 3 {
			r.killAddr = addrs[len(addrs)-2]
		} else {
			r.killAddr = addrs[len(addrs)-1]
		}
	}
	r.addrs = addrs

	ccfg := cluster.Config{
		Addrs:            addrs,
		Joins:            twip.Joins,
		Replicas:         r.cfg.Replicas,
		FailoverInterval: r.cfg.FailoverInterval,
		FailoverMisses:   r.cfg.FailoverMisses,
		CoordinatorName:  "loadgen",
	}
	if len(r.cfg.Addrs) == 0 {
		ccfg.Bounds = boundsFor(len(addrs), r.cfg.Users)
	} else {
		// Connect mode: the deployment's bounds come from the caller,
		// like pequod-cli's -bounds (a stale list costs NotOwner
		// round-trips until the client adopts the live map).
		ccfg.Bounds = r.cfg.Bounds
	}
	cl, err := cluster.New(ctx, ccfg)
	if err != nil {
		return err
	}
	r.cl = cl
	return r.preload(ctx)
}

// preload writes the subscription rows for every active user. Batched:
// the cluster pipelines per-server, so this is the fastest way in.
func (r *Runner) preload(ctx context.Context) error {
	var batch []core.KV
	flush := func() error {
		if len(batch) == 0 {
			return nil
		}
		err := r.cl.PutBatch(ctx, batch)
		batch = batch[:0]
		return err
	}
	for _, u := range r.active {
		for _, p := range r.uni.Followees(u) {
			batch = append(batch, core.KV{
				Key:   keysJoinSub(u, p),
				Value: "1",
			})
			if len(batch) >= 1024 {
				if err := flush(); err != nil {
					return err
				}
			}
		}
	}
	if err := flush(); err != nil {
		return err
	}
	if err := r.quiesceRetry(ctx, 15*time.Second); err != nil {
		return fmt.Errorf("loadgen: preload quiesce: %w", err)
	}
	r.cfg.Logf("loadgen: preloaded subscriptions for %d active users across %d members",
		len(r.active), len(r.addrs))
	return nil
}

func keysJoinSub(u, p int32) string {
	return "s|" + twip.UserID(u) + "|" + twip.UserID(p)
}

// teardown closes everything the runner owns. Safe on partial setup.
func (r *Runner) teardown() {
	if r.cl != nil {
		r.cl.Close()
	}
	for _, s := range r.servers {
		s.Close()
	}
}

// runEvent fires one phase's topology change while traffic flows.
func (r *Runner) runEvent(ctx context.Context, event string) error {
	switch event {
	case "":
		return nil
	case EventJoin:
		return r.eventJoin(ctx)
	case EventDrain:
		return r.eventDrain(ctx)
	case EventRebalance:
		return r.eventRebalance(ctx)
	case EventKill:
		return r.eventKill(ctx)
	case EventRestart:
		return r.eventRestart(ctx)
	}
	return fmt.Errorf("unknown event %q", event)
}

// eventJoin starts a spare member and splits the hottest range onto it
// under live load.
func (r *Runner) eventJoin(ctx context.Context) error {
	scfg, err := r.serverConfig("lgJ")
	if err != nil {
		return err
	}
	s, err := server.New(scfg)
	if err != nil {
		return err
	}
	addr, err := s.Start()
	if err != nil {
		s.Close()
		return err
	}
	r.servers[addr] = s
	r.dirs[addr] = scfg.DataDir
	if err := r.cl.AddServer(ctx, addr); err != nil {
		return err
	}
	r.joined = addr
	r.cfg.Logf("loadgen: joined %s (members now %d)", addr, r.cl.Members())
	return nil
}

// eventDrain drains the member EventJoin added, handing its ranges
// back under live load.
func (r *Runner) eventDrain(ctx context.Context) error {
	if r.joined == "" {
		return fmt.Errorf("drain: no joined member (script a join phase first)")
	}
	if err := r.cl.DrainServer(ctx, r.joined); err != nil {
		return err
	}
	r.cfg.Logf("loadgen: drained %s (members now %d)", r.joined, r.cl.Members())
	r.joined = ""
	return nil
}

// eventRebalance migrates a slice of the timeline keyspace between
// neighbors by moving the highest t|u bound — the same ExtractRange/
// SpliceRange/MapUpdate path the load-aware rebalancer drives.
func (r *Runner) eventRebalance(ctx context.Context) error {
	bounds := r.cl.Map().Bounds()
	for i := len(bounds) - 1; i >= 0; i-- {
		num, ok := parseUserBound(bounds[i])
		if !ok {
			continue
		}
		delta := r.cfg.Users/16 + 1
		next := num + delta
		if next >= r.cfg.Users {
			next = num - delta
		}
		if next <= 0 {
			continue
		}
		target := fmt.Sprintf("t|u%07d", next)
		// Keep the bound list strictly ordered after the move.
		if i > 0 && target <= bounds[i-1] || i < len(bounds)-1 && target >= bounds[i+1] {
			continue
		}
		if err := r.cl.MoveBound(ctx, i, target); err != nil {
			return err
		}
		r.cfg.Logf("loadgen: moved bound %d: %q -> %q", i, bounds[i], target)
		return nil
	}
	return fmt.Errorf("rebalance: no movable t|u bound in %v", bounds)
}

func parseUserBound(b string) (int, bool) {
	if !strings.HasPrefix(b, "t|u") {
		return 0, false
	}
	n, err := strconv.Atoi(b[len("t|u"):])
	if err != nil {
		return 0, false
	}
	return n, true
}

// eventKill hard-stops a member and waits for the failure detector and
// coordinator to repair the map around the death. The write fence is
// held exclusively across quiesce+close, so every acknowledged post
// has settled onto its replicas before they become the only copy —
// the durability contract automatic repair promotes under.
func (r *Runner) eventKill(ctx context.Context) error {
	s := r.servers[r.killAddr]
	if s == nil {
		return fmt.Errorf("kill: no owned server at %s", r.killAddr)
	}
	r.fence.Lock()
	err := r.quiesceRetry(ctx, 15*time.Second)
	if err == nil {
		s.Close()
		delete(r.servers, r.killAddr)
	}
	r.fence.Unlock()
	if err != nil {
		return fmt.Errorf("kill: pre-kill quiesce: %w", err)
	}
	r.cfg.Logf("loadgen: killed %s, awaiting automatic repair", r.killAddr)
	deadline := time.Now().Add(20 * time.Second)
	for {
		if !containsStr(r.cl.MemberAddrs(), r.killAddr) {
			r.cfg.Logf("loadgen: repair complete (members now %d)", r.cl.Members())
			return nil
		}
		if time.Now().After(deadline) {
			return fmt.Errorf("kill: automatic repair never removed %s", r.killAddr)
		}
		select {
		case <-time.After(10 * time.Millisecond):
		case <-ctx.Done():
			return ctx.Err()
		}
	}
}

// eventRestart gracefully stops a durable member and warm-restarts it
// from its data dir at the same address: recovery replays snapshot+log
// inside server.New before the listener rebinds, so the member comes
// back owning what it owned. The fence (plus quiesce) is held across
// the gap; the gap is short enough that the failure detector's miss
// budget normally keeps the map unchanged, and if a detection does
// race the restart the pre-close quiesce means repair loses nothing.
func (r *Runner) eventRestart(ctx context.Context) error {
	addr := r.restartAddr
	s := r.servers[addr]
	if s == nil {
		return fmt.Errorf("restart: no owned server at %s", addr)
	}
	dir := r.dirs[addr]
	if dir == "" {
		return fmt.Errorf("restart: member %s is not durable", addr)
	}
	r.fence.Lock()
	defer r.fence.Unlock()
	if err := r.quiesceRetry(ctx, 15*time.Second); err != nil {
		return fmt.Errorf("restart: pre-restart quiesce: %w", err)
	}
	s.Close()
	scfg, err := r.serverConfig(filepath.Base(dir))
	if err != nil {
		return err
	}
	s2, err := server.New(scfg)
	if err != nil {
		return fmt.Errorf("restart: recovering from %s: %w", dir, err)
	}
	var ln net.Listener
	deadline := time.Now().Add(10 * time.Second)
	for {
		ln, err = net.Listen("tcp", addr)
		if err == nil {
			break
		}
		if time.Now().After(deadline) {
			s2.Close()
			return fmt.Errorf("restart: rebinding %s: %w", addr, err)
		}
		time.Sleep(5 * time.Millisecond)
	}
	go s2.Serve(ln) //nolint:errcheck // exits when teardown closes the server
	r.servers[addr] = s2
	r.cfg.Logf("loadgen: warm-restarted %s from %s", addr, dir)
	return nil
}

func containsStr(ss []string, s string) bool {
	for _, v := range ss {
		if v == s {
			return true
		}
	}
	return false
}
