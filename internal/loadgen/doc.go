// Package loadgen is the open-loop, millions-of-users load harness.
//
// Unlike the closed-loop runners in internal/twip and
// internal/experiments — which issue the next operation only when the
// previous one returns, and therefore can't see queueing, tail
// latency, or freshness lag — loadgen schedules arrivals on an
// independent clock (exponential gaps at a configured rate) and
// measures every operation from its *scheduled* time. An overloaded
// cluster shows up as growing latency and shed arrivals, never as a
// silently reduced offered rate.
//
// The pieces:
//
//   - Universe: a procedural social graph. Followee sets, celebrity
//     skew (Zipf, shared between follow targets and post authors),
//     and the active reader pool all derive from one seed, so a
//     universe of millions costs a few words and every run replays
//     from its printed seed.
//   - Hist/ShardedHist: lock-free HDR-style log-linear histograms,
//     one atomic add per observation, sharded per worker.
//   - Checker: the online oracle. It shadows a deterministic subset
//     of users and audits their timeline reads *while load runs* —
//     lost acknowledged writes, out-of-budget staleness, phantoms,
//     duplicates, payload mismatches — and measures freshness lag as
//     an age distribution. A final post-quiesce sweep demands every
//     acknowledged row with no grace.
//   - Runner: drives the phase script (steady, join, drain,
//     rebalance, member kill + automatic repair, warm restart) over a
//     self-contained cluster it owns, or pure load against a live
//     deployment, and emits the per-phase Report that becomes
//     BENCH_9.json.
//
// cmd/pequod-load is the CLI; TestOpenLoopUnderChaos runs the whole
// scenario scaled down under the race detector in CI.
package loadgen
