package loadgen

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"pequod/internal/core"
	"pequod/internal/keys"
	"pequod/internal/twip"
)

// Checker is the online freshness/correctness oracle: it shadows a
// deterministic subset of users (their followee sets frozen for the
// run) and verifies timeline reads *while the load runs*. For every
// post issued by the harness it derives which tracked timelines the
// row must eventually reach; each tracked read is then audited against
// that expectation:
//
//   - missing — an acknowledged post older than the staleness budget
//     is absent from a scan that covers its time range (a lost or
//     out-of-budget-stale write);
//   - phantom — a row the tracked user should never see;
//   - duplicate — the same key twice in one scan result;
//   - mismatch — right key, wrong payload.
//
// Acknowledged-but-not-yet-visible rows inside the budget are not
// violations; their ages are recorded into a freshness-lag histogram,
// turning "how stale are reads under load?" into a measured
// distribution (the age-of-information view of freshness) rather than
// a post-quiesce assertion. FinalSweep closes the loop after the run
// quiesces: every acknowledged row must be present, budget zero.
type Checker struct {
	budget time.Duration
	users  map[int32]*trackedUser
	// followers indexes poster id → tracked users who follow it, built
	// once from the frozen followee sets; PostIssued consults it to fan
	// each post's expectation to the timelines it must reach.
	followers map[int32][]*trackedUser

	lag *Hist // age (µs) of acked-but-not-yet-visible rows at read time

	postsTracked  atomic.Int64 // expectation rows created
	acks          atomic.Int64
	checksTracked atomic.Int64 // scans audited
	rowsVerified  atomic.Int64 // rows confirmed present and correct
	boundedChecks atomic.Int64 // scans issued with a staleness budget
	dualChecks    atomic.Int64 // bounded/fresh read pairs cross-audited

	vmu        sync.Mutex
	violations int64
	byKind     map[string]int64
	samples    []string
}

// expectRow is one expected timeline row for one tracked user.
type expectRow struct {
	time  int64
	value string
	state rowState
	acked time.Time
	// confirmed: seen in a scan after ack; skipped by missing-checks
	// so steady-state audit cost tracks the unconfirmed frontier, not
	// the whole history.
	confirmed bool
}

type rowState int

const (
	rowPending rowState = iota // issued, not yet acknowledged
	rowAcked                   // acknowledged to the client
	rowFailed                  // errored: presence and absence both allowed
)

type trackedUser struct {
	id int32
	mu sync.Mutex
	// rows holds every expected timeline key ever derived for this user
	// (phantom and mismatch checks need full history); unconfirmed is
	// the subset still awaiting a covering scan.
	rows        map[string]*expectRow
	unconfirmed map[string]*expectRow
}

const maxViolationSamples = 24

// NewChecker builds a checker over the tracked ids, deriving each
// user's frozen followee set from followeesOf (typically
// Universe.Followees). budget is the staleness bound: an acknowledged
// write absent from a covering read issued more than budget after the
// ack is a violation.
func NewChecker(budget time.Duration, tracked []int32, followeesOf func(int32) []int32) *Checker {
	c := &Checker{
		budget:    budget,
		users:     make(map[int32]*trackedUser, len(tracked)),
		followers: make(map[int32][]*trackedUser),
		lag:       &Hist{},
		byKind:    make(map[string]int64),
	}
	for _, id := range tracked {
		if _, ok := c.users[id]; ok {
			continue
		}
		tu := &trackedUser{
			id:          id,
			rows:        make(map[string]*expectRow),
			unconfirmed: make(map[string]*expectRow),
		}
		c.users[id] = tu
		for _, p := range followeesOf(id) {
			c.followers[p] = append(c.followers[p], tu)
		}
	}
	return c
}

// Tracked reports whether user id is under checker observation.
func (c *Checker) Tracked(id int32) bool {
	_, ok := c.users[id]
	return ok
}

// TrackedCount returns the number of tracked users.
func (c *Checker) TrackedCount() int { return len(c.users) }

// TrackedIDs returns the tracked user ids (order unspecified).
func (c *Checker) TrackedIDs() []int32 {
	out := make([]int32, 0, len(c.users))
	for id := range c.users {
		out = append(out, id)
	}
	return out
}

// timelineKey is the key the Twip join materializes for a post by
// poster at time t on user's timeline.
func timelineKey(user int32, t int64, poster int32) string {
	return keys.Join("t", twip.UserID(user), twip.TimeID(t), twip.UserID(poster))
}

// PostIssued registers a post about to be sent: every tracked follower
// of poster now expects the row (pending — absence fine, presence must
// match the payload). Call before the write so a racing read can never
// see a row the checker has no record of. Returns whether any tracked
// timeline is affected (callers may skip Acked/Failed otherwise).
func (c *Checker) PostIssued(poster int32, t int64, text string) bool {
	followers := c.followers[poster]
	for _, tu := range followers {
		key := timelineKey(tu.id, t, poster)
		row := &expectRow{time: t, value: text, state: rowPending}
		tu.mu.Lock()
		tu.rows[key] = row
		tu.unconfirmed[key] = row
		tu.mu.Unlock()
		c.postsTracked.Add(1)
	}
	return len(followers) > 0
}

// PostAcked upgrades the post's rows to acknowledged: from now (plus
// budget) on, covering reads must see them.
func (c *Checker) PostAcked(poster int32, t int64) {
	now := time.Now()
	for _, tu := range c.followers[poster] {
		key := timelineKey(tu.id, t, poster)
		tu.mu.Lock()
		if row := tu.rows[key]; row != nil && row.state == rowPending {
			row.state = rowAcked
			row.acked = now
			c.acks.Add(1)
		}
		tu.mu.Unlock()
	}
}

// PostFailed marks the post's rows failed: the write errored, so the
// row may or may not have landed — both visibility outcomes are
// accepted (the payload must still match if it shows up).
func (c *Checker) PostFailed(poster int32, t int64) {
	for _, tu := range c.followers[poster] {
		key := timelineKey(tu.id, t, poster)
		tu.mu.Lock()
		if row := tu.rows[key]; row != nil && row.state == rowPending {
			row.state = rowFailed
			delete(tu.unconfirmed, key)
		}
		tu.mu.Unlock()
	}
}

// OnCheck audits one timeline scan for user id covering times
// [since, ∞), started at the given time. Untracked users are ignored.
func (c *Checker) OnCheck(id int32, since int64, kvs []core.KV, started time.Time) {
	c.audit(id, since, kvs, started, c.budget)
}

// OnBoundedCheck audits a timeline scan that was issued with a
// per-read staleness budget of extra: the read is allowed to serve
// state up to extra older than a fresh read would, so the absence
// grace is the checker's replication budget plus the read's own. The
// payload/phantom/duplicate rules do not loosen — a bounded read may
// return old state, never wrong or fabricated state.
func (c *Checker) OnBoundedCheck(id int32, since int64, kvs []core.KV, started time.Time, extra time.Duration) {
	c.boundedChecks.Add(1)
	c.audit(id, since, kvs, started, c.budget+extra)
}

// OnDualCheck cross-audits a bounded/fresh read pair over the same
// timeline and window: the bounded scan (budget extra) ran first,
// starting at bstart; the fresh oracle scan ran immediately after,
// starting at fstart. Each scan is audited on its own (bounded with
// the loosened grace, fresh with the standard one), then the pair is
// compared row-for-row:
//
//   - stale-read — the fresh oracle shows a row the bounded read
//     omitted even though it was acknowledged more than
//     budget+extra before the bounded read began: the bounded read
//     exceeded its staleness bound.
//   - regression — the bounded read shows a row the fresh oracle
//     lost even though it was acknowledged more than budget before
//     the fresh read began: the fresh path dropped confirmed state
//     (or the bounded path resurrected evicted state).
//
// Unlike the single-scan missing check, the pairwise pass judges
// confirmed rows too — once both scans disagree about a settled row,
// one of them is wrong.
func (c *Checker) OnDualCheck(id int32, since int64, bounded, fresh []core.KV, bstart, fstart time.Time, extra time.Duration) {
	tu := c.users[id]
	if tu == nil {
		return
	}
	c.dualChecks.Add(1)
	c.boundedChecks.Add(1)
	c.audit(id, since, bounded, bstart, c.budget+extra)
	c.audit(id, since, fresh, fstart, c.budget)

	inBounded := make(map[string]bool, len(bounded))
	for _, kv := range bounded {
		inBounded[kv.Key] = true
	}
	inFresh := make(map[string]bool, len(fresh))
	for _, kv := range fresh {
		inFresh[kv.Key] = true
	}
	tu.mu.Lock()
	defer tu.mu.Unlock()
	for key := range inFresh {
		if inBounded[key] {
			continue
		}
		row := tu.rows[key]
		if row == nil || row.state != rowAcked {
			continue // phantom already flagged by audit, or write unacked
		}
		if age := bstart.Sub(row.acked); age > c.budget+extra {
			c.violate("stale-read", "user %s: bounded read (budget %v) omitted row %q acked %v earlier; fresh oracle has it",
				twip.UserID(id), extra, key, age.Round(time.Millisecond))
		}
	}
	for key := range inBounded {
		if inFresh[key] {
			continue
		}
		row := tu.rows[key]
		if row == nil || row.state != rowAcked {
			continue
		}
		if age := fstart.Sub(row.acked); age > c.budget {
			c.violate("regression", "user %s: fresh oracle lost row %q acked %v earlier; bounded read still has it",
				twip.UserID(id), key, age.Round(time.Millisecond))
		}
	}
}

// FinalSweep audits a post-quiesce full timeline scan with budget
// zero: every acknowledged row must be present, no grace.
func (c *Checker) FinalSweep(id int32, kvs []core.KV, started time.Time) {
	c.audit(id, 0, kvs, started, 0)
}

func (c *Checker) audit(id int32, since int64, kvs []core.KV, started time.Time, budget time.Duration) {
	tu := c.users[id]
	if tu == nil {
		return
	}
	c.checksTracked.Add(1)
	tu.mu.Lock()
	defer tu.mu.Unlock()
	seen := make(map[string]bool, len(kvs))
	for _, kv := range kvs {
		if seen[kv.Key] {
			c.violate("duplicate", "user %s: key %q appears twice in one scan", twip.UserID(id), kv.Key)
			continue
		}
		seen[kv.Key] = true
		row := tu.rows[kv.Key]
		if row == nil {
			c.violate("phantom", "user %s: unexpected row %q", twip.UserID(id), kv.Key)
			continue
		}
		if row.value != kv.Value {
			c.violate("mismatch", "user %s: key %q = %.40q, want %.40q", twip.UserID(id), kv.Key, kv.Value, row.value)
			continue
		}
		c.rowsVerified.Add(1)
		if !row.confirmed && row.state != rowPending {
			row.confirmed = true
			delete(tu.unconfirmed, kv.Key)
		}
	}
	// Missing / lag: only unconfirmed acknowledged rows the scan
	// covered can be judged absent.
	for key, row := range tu.unconfirmed {
		if row.state != rowAcked || row.time < since || seen[key] {
			continue
		}
		age := started.Sub(row.acked)
		if age < 0 {
			age = 0
		}
		if age > budget {
			c.violate("missing", "user %s: acked row %q absent %v after ack (budget %v)",
				twip.UserID(id), key, age.Round(time.Millisecond), budget)
			// Count a lost row once, not once per subsequent scan.
			row.confirmed = true
			delete(tu.unconfirmed, key)
			continue
		}
		c.lag.Record(age.Microseconds())
	}
}

func (c *Checker) violate(kind, format string, args ...any) {
	c.vmu.Lock()
	defer c.vmu.Unlock()
	c.violations++
	c.byKind[kind]++
	if len(c.samples) < maxViolationSamples {
		c.samples = append(c.samples, kind+": "+fmt.Sprintf(format, args...))
	}
}

// CheckerReport is the checker's JSON-ready summary.
type CheckerReport struct {
	TrackedUsers   int              `json:"tracked_users"`
	PostsTracked   int64            `json:"posts_tracked"`
	PostsAcked     int64            `json:"posts_acked"`
	ChecksAudited  int64            `json:"checks_audited"`
	RowsVerified   int64            `json:"rows_verified"`
	BoundedChecks  int64            `json:"bounded_checks,omitempty"`
	DualChecks     int64            `json:"dual_checks,omitempty"`
	Violations     int64            `json:"violations"`
	ViolationKinds map[string]int64 `json:"violation_kinds,omitempty"`
	Samples        []string         `json:"violation_samples,omitempty"`
	// Freshness lag: age of acked-but-not-yet-visible rows observed by
	// reads, µs. LagObservations counts them (zero lag pXX means reads
	// never caught a row in flight).
	LagObservations int64 `json:"lag_observations"`
	LagP50us        int64 `json:"lag_p50_us"`
	LagP99us        int64 `json:"lag_p99_us"`
	LagMaxus        int64 `json:"lag_max_us"`
}

// Report summarizes everything observed so far.
func (c *Checker) Report() CheckerReport {
	c.vmu.Lock()
	kinds := make(map[string]int64, len(c.byKind))
	for k, v := range c.byKind {
		kinds[k] = v
	}
	samples := append([]string(nil), c.samples...)
	violations := c.violations
	c.vmu.Unlock()
	lag := c.lag.Snapshot()
	return CheckerReport{
		TrackedUsers:    len(c.users),
		PostsTracked:    c.postsTracked.Load(),
		PostsAcked:      c.acks.Load(),
		ChecksAudited:   c.checksTracked.Load(),
		RowsVerified:    c.rowsVerified.Load(),
		BoundedChecks:   c.boundedChecks.Load(),
		DualChecks:      c.dualChecks.Load(),
		Violations:      violations,
		ViolationKinds:  kinds,
		Samples:         samples,
		LagObservations: lag.Total,
		LagP50us:        lag.Quantile(0.50),
		LagP99us:        lag.Quantile(0.99),
		LagMaxus:        lag.Max,
	}
}
