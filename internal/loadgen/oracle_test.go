package loadgen

import (
	"context"
	"testing"
	"time"

	"pequod/internal/core"
)

// TestDualCheckOracleRules pins the pairwise verdicts of the dual-read
// oracle deterministically (the cluster test below exercises them
// under fire, where a violation should never actually occur):
// divergence inside the combined budget is legal; a bounded read
// omitting a long-settled row the fresh oracle shows is stale-read; a
// fresh read losing a settled row the bounded read still shows is
// regression — and that last one is invisible to the single-scan
// audit, which stops watching a row once any scan confirms it.
func TestDualCheckOracleRules(t *testing.T) {
	const budget = 100 * time.Millisecond
	const extra = 50 * time.Millisecond
	newC := func() *Checker {
		return NewChecker(budget, []int32{1}, func(int32) []int32 { return []int32{7} })
	}
	// post registers an acked expectation whose ack is backdated so the
	// test controls the row's age at audit time.
	post := func(c *Checker, tm int64, ackedAgo time.Duration) string {
		c.PostIssued(7, tm, "v")
		c.PostAcked(7, tm)
		key := timelineKey(1, tm, 7)
		tu := c.users[1]
		tu.mu.Lock()
		tu.rows[key].acked = time.Now().Add(-ackedAgo)
		tu.mu.Unlock()
		return key
	}
	now := time.Now()

	// Bounded trailing fresh by less than budget+extra: legal.
	c := newC()
	k := post(c, 1, 20*time.Millisecond)
	c.OnDualCheck(1, 0, nil, []core.KV{{Key: k, Value: "v"}}, now, now, extra)
	if rep := c.Report(); rep.Violations != 0 {
		t.Fatalf("in-budget divergence flagged: %v", rep.Samples)
	}

	// Bounded omitting a row settled 1s ago: over its bound.
	c = newC()
	k = post(c, 2, time.Second)
	c.OnDualCheck(1, 0, nil, []core.KV{{Key: k, Value: "v"}}, now, now, extra)
	if rep := c.Report(); rep.ViolationKinds["stale-read"] == 0 {
		t.Fatalf("over-budget bounded omission not flagged: %+v", rep)
	}

	// Fresh losing a settled row the bounded read still shows. The
	// bounded scan confirms the row first, so only the pairwise pass
	// can catch the fresh side's loss.
	c = newC()
	k = post(c, 3, time.Second)
	c.OnDualCheck(1, 0, []core.KV{{Key: k, Value: "v"}}, nil, now, now, extra)
	rep := c.Report()
	if rep.ViolationKinds["regression"] == 0 {
		t.Fatalf("fresh-side loss not flagged: %+v", rep)
	}
	if rep.DualChecks != 1 || rep.BoundedChecks != 1 {
		t.Fatalf("dual/bounded counters wrong: %+v", rep)
	}
}

// TestFreshnessOracleDualReads is the freshness-oracle property test:
// a Twip workload where every tracked timeline read is issued twice —
// once with a per-read staleness budget (carried on the wire through
// whatever member routing lands on) and once fresh immediately after —
// while the partition map migrates and a member is killed and repaired
// mid-stream. The oracle demands the bounded result is never staler
// than its budget (plus the replication allowance), never fabricates
// rows, and never loses settled rows relative to the fresh read; the
// zero-budget final sweep then closes the loop. Runs raced in CI.
func TestFreshnessOracleDualReads(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-second cluster scenario")
	}
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()

	phaseDur := 500 * time.Millisecond
	cfg := Config{
		Users:       50_000,
		ActiveUsers: 800,
		Follows:     8,
		TrackEvery:  4,
		Rate:        350,
		Seed:        11,
		Workers:     8,
		// Replication allowance generous under -race; the per-read
		// budget below is what the bounded side is actually held to
		// relative to the oracle.
		Budget:    10 * time.Second,
		ReadStale: 25 * time.Millisecond,
		DualRead:  true,
		Phases: []Phase{
			{Name: "steady", Duration: phaseDur},
			{Name: "rebalance", Duration: phaseDur, Event: EventRebalance},
			{Name: "kill", Duration: phaseDur, Event: EventKill},
		},
		Servers:          3,
		FailoverInterval: 100 * time.Millisecond,
		FailoverMisses:   5,
		Logf:             t.Logf,
	}
	rep, err := Run(ctx, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Checker.Violations != 0 {
		t.Fatalf("oracle violations (%d): %v", rep.Checker.Violations, rep.Checker.Samples)
	}
	if rep.Checker.DualChecks == 0 {
		t.Fatalf("no dual reads audited: %+v", rep.Checker)
	}
	if rep.Checker.BoundedChecks < rep.Checker.DualChecks {
		t.Fatalf("bounded counter below dual counter: %+v", rep.Checker)
	}
	if rep.Checker.PostsAcked == 0 || rep.Checker.RowsVerified == 0 {
		t.Fatalf("oracle audited nothing: %+v", rep.Checker)
	}
	if !rep.DualRead || rep.ReadStaleMs != 25 {
		t.Fatalf("report config echo wrong: dual=%v read_stale_ms=%d", rep.DualRead, rep.ReadStaleMs)
	}
	t.Logf("oracle: %d dual reads, %d rows verified, lag p99 %dµs",
		rep.Checker.DualChecks, rep.Checker.RowsVerified, rep.Checker.LagP99us)
}
