package loadgen

import (
	"math"
	"math/rand"
	"sort"
	"sync"
	"testing"
)

// A recorded value's cell representative must stay within the
// structure's ~3% relative error (exact below histSub), and the index
// must be monotone in the value.
func TestHistIndexRoundTrip(t *testing.T) {
	for v := int64(0); v < histSub; v++ {
		if got := histValue(histIndex(v)); got != v {
			t.Fatalf("small value %d: representative %d, want exact", v, got)
		}
	}
	for v := int64(histSub); v < int64(1)<<40; v = v*9/8 + 1 {
		rep := histValue(histIndex(v))
		if relErr(rep, v) > 1.0/float64(histSub) {
			t.Fatalf("value %d: representative %d (err %.4f)", v, rep, relErr(rep, v))
		}
	}
	prev := int64(-1)
	for _, v := range []int64{0, 1, 31, 32, 33, 100, 1000, 12345, 1 << 20, 1 << 40, math.MaxInt64} {
		i := histIndex(v)
		if i < 0 || i >= histCells {
			t.Fatalf("histIndex(%d) = %d out of range", v, i)
		}
		if int64(i) < prev {
			t.Fatalf("histIndex not monotone at %d", v)
		}
		prev = int64(i)
	}
	if histIndex(-5) != 0 {
		t.Fatalf("negative values must clamp to cell 0")
	}
}

// Quantiles must land within the structure's ~3% relative error, and
// the extremes must be exact.
func TestHistQuantileAccuracy(t *testing.T) {
	h := &Hist{}
	rng := rand.New(rand.NewSource(1))
	var vals []int64
	for i := 0; i < 20000; i++ {
		// Log-uniform latencies from 1µs to ~10s.
		v := int64(math.Exp(rng.Float64() * math.Log(1e7)))
		vals = append(vals, v)
		h.Record(v)
	}
	s := h.Snapshot()
	if s.Total != int64(len(vals)) {
		t.Fatalf("Total = %d, want %d", s.Total, len(vals))
	}
	sortInt64(vals)
	for _, q := range []float64{0.5, 0.9, 0.99, 0.999} {
		want := vals[int(q*float64(len(vals)))]
		got := s.Quantile(q)
		if relErr(got, want) > 0.05 {
			t.Fatalf("q%v = %d, want ≈%d (err %.3f)", q, got, want, relErr(got, want))
		}
	}
	if s.Quantile(1) != s.Max || s.Max != vals[len(vals)-1] {
		t.Fatalf("Quantile(1)=%d Max=%d true max=%d", s.Quantile(1), s.Max, vals[len(vals)-1])
	}
	if s.Quantile(0.5) == 0 {
		t.Fatal("median collapsed to zero")
	}
	mean := s.Mean()
	var sum float64
	for _, v := range vals {
		sum += float64(v)
	}
	if relErrF(mean, sum/float64(len(vals))) > 1e-9 {
		t.Fatalf("Mean = %v, want %v", mean, sum/float64(len(vals)))
	}
}

func TestHistEmptyAndMerge(t *testing.T) {
	var empty Hist
	s := empty.Snapshot()
	if s.Quantile(0.99) != 0 || s.Mean() != 0 {
		t.Fatal("empty histogram must report zeros")
	}
	sh := NewShardedHist(4)
	for w := 0; w < 4; w++ {
		for i := 0; i < 100; i++ {
			sh.Record(w, int64(w*1000+i))
		}
	}
	m := sh.Merge()
	if m.Total != 400 || sh.Count() != 400 {
		t.Fatalf("merged Total = %d, Count = %d", m.Total, sh.Count())
	}
	if m.Max != 3099 {
		t.Fatalf("merged Max = %d", m.Max)
	}
}

// Concurrent recording must lose nothing (the whole point of the
// sharded lock-free design); run under -race in CI.
func TestHistConcurrentRecording(t *testing.T) {
	sh := NewShardedHist(8)
	const workers, per = 16, 5000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(w)))
			for i := 0; i < per; i++ {
				sh.Record(w, int64(rng.Intn(1_000_000)))
			}
		}(w)
	}
	wg.Wait()
	if got := sh.Merge().Total; got != workers*per {
		t.Fatalf("lost observations: %d of %d", workers*per-int(got), workers*per)
	}
}

func sortInt64(v []int64) {
	sort.Slice(v, func(i, j int) bool { return v[i] < v[j] })
}

func relErr(got, want int64) float64 { return relErrF(float64(got), float64(want)) }

func relErrF(got, want float64) float64 {
	if want == 0 {
		return math.Abs(got)
	}
	return math.Abs(got-want) / want
}
