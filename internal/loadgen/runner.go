package loadgen

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"
	"time"

	"pequod/internal/cluster"
	"pequod/internal/core"
	"pequod/internal/freshness"
	"pequod/internal/keys"
	"pequod/internal/perrs"
	"pequod/internal/server"
	"pequod/internal/twip"
)

// Phase is one segment of the run's script: traffic flows at the
// configured rate throughout; Event names the membership/topology
// change fired at the phase's start (empty = steady state). The phase
// lasts at least Duration, extended if the event takes longer.
type Phase struct {
	Name     string        `json:"name"`
	Duration time.Duration `json:"-"`
	// Event: "" | "join" | "drain" | "rebalance" | "kill" | "restart".
	Event string `json:"event,omitempty"`
}

// Standard event names.
const (
	EventJoin      = "join"      // start a spare server and AddServer it
	EventDrain     = "drain"     // DrainServer the joined spare
	EventRebalance = "rebalance" // move a timeline partition bound
	EventKill      = "kill"      // quiesce, hard-stop a member, await automatic repair
	EventRestart   = "restart"   // gracefully stop a durable member, warm-restart it in place
)

// StandardPhases is the full chaos script: steady state, then every
// admin-driven topology change the cluster supports, each given d of
// traffic. Restart precedes kill so the warm-restarted member is back
// and settled before the failure detector has a death to chew on.
func StandardPhases(d time.Duration) []Phase {
	return []Phase{
		{Name: "steady", Duration: d},
		{Name: "join", Duration: d, Event: EventJoin},
		{Name: "drain", Duration: d, Event: EventDrain},
		{Name: "rebalance", Duration: d, Event: EventRebalance},
		{Name: "restart", Duration: d, Event: EventRestart},
		{Name: "kill", Duration: d, Event: EventKill},
	}
}

// DefaultMix is the open-loop operation blend. It keeps the paper's
// read-mostly shape but posts far more than the §5.1 closed-loop mix
// (whose 1% rides on a 1M-post prepopulation): the open-loop harness
// starts from empty timelines and the checker derives expectations
// only for posts it saw issued, so the posts themselves build the
// content under audit.
var DefaultMix = twip.Mix{Login: 5, Check: 70, Subscribe: 5, Post: 20}

// Config parameterizes an open-loop run. The zero value of most
// fields picks a sensible default (see withDefaults); Seed fully
// determines the simulated universe and the arrival schedule.
type Config struct {
	Users       int // simulated universe size (ids that can post / be followed)
	ActiveUsers int // reader pool actually issuing timeline checks
	Follows     int // mean followee-set size for active users
	TrackEvery  int // every k-th active user is checker-tracked

	Rate     float64       // offered arrival rate, ops/sec
	Mix      twip.Mix      // operation blend (DefaultMix if zero)
	Seed     int64         // determinism root; printed in the report
	Workers  int           // concurrent executors draining the queue
	Queue    int           // dispatch queue depth; arrivals beyond it are shed
	Budget   time.Duration // staleness budget for the online checker
	TweetLen int           // synthetic post payload size
	Phases   []Phase       // the script; StandardPhases(2s) if nil

	// ReadStale > 0 issues every timeline read with that per-read
	// staleness budget (carried on the wire per frame, surviving
	// routing retries); the checker loosens only its absence grace by
	// the same amount — payloads and phantoms stay strict. DualRead
	// additionally re-issues each tracked read fresh immediately after
	// the bounded one and cross-audits the pair (the freshness
	// oracle): bounded may trail fresh by at most the budget, and
	// neither side may fabricate or lose settled rows.
	ReadStale time.Duration
	DualRead  bool

	// Self-contained mode (Addrs empty): the runner owns the cluster.
	Servers          int
	Replicas         int
	DataDir          string // root for per-member durable dirs; required by EventRestart
	FailoverInterval time.Duration
	FailoverMisses   int

	// Connect mode: run against an existing cluster at these
	// addresses, with the deployment's partition bounds (as for
	// pequod-cli -bounds). Process-level events (join/kill/restart)
	// need server ownership and are rejected; see docs/OPERATIONS.md.
	Addrs  []string
	Bounds []string

	Logf func(format string, args ...any) // optional progress output
}

func (c Config) withDefaults() Config {
	if c.Users < 2 {
		c.Users = 100_000
	}
	if c.ActiveUsers <= 0 {
		c.ActiveUsers = 2000
	}
	if c.ActiveUsers > c.Users {
		c.ActiveUsers = c.Users
	}
	if c.Follows <= 0 {
		c.Follows = 8
	}
	if c.TrackEvery <= 0 {
		c.TrackEvery = 16
	}
	if c.Rate <= 0 {
		c.Rate = 500
	}
	if c.Mix.Total() == 0 {
		c.Mix = DefaultMix
	}
	if c.Workers <= 0 {
		c.Workers = 8
	}
	if c.Queue <= 0 {
		c.Queue = c.Workers * 64
	}
	if c.Budget <= 0 {
		c.Budget = 2 * time.Second
	}
	if c.TweetLen <= 0 {
		c.TweetLen = 100
	}
	if c.Phases == nil {
		c.Phases = StandardPhases(2 * time.Second)
	}
	if c.Servers <= 0 {
		c.Servers = 4
	}
	if c.Replicas <= 0 {
		c.Replicas = 2
	}
	if c.FailoverInterval <= 0 {
		c.FailoverInterval = 25 * time.Millisecond
	}
	if c.FailoverMisses <= 0 {
		c.FailoverMisses = 3
	}
	if c.Logf == nil {
		c.Logf = func(string, ...any) {}
	}
	return c
}

func (c Config) validate() error {
	connect := len(c.Addrs) > 0
	for _, ph := range c.Phases {
		switch ph.Event {
		case "", EventRebalance:
		case EventJoin, EventDrain, EventKill, EventRestart:
			if connect {
				return fmt.Errorf("loadgen: event %q needs server ownership; not available in connect mode", ph.Event)
			}
		default:
			return fmt.Errorf("loadgen: unknown event %q", ph.Event)
		}
		if ph.Event == EventRestart && !connect && c.DataDir == "" {
			return fmt.Errorf("loadgen: event %q needs durable members (set DataDir)", ph.Event)
		}
	}
	if c.DualRead && c.ReadStale <= 0 {
		return fmt.Errorf("loadgen: DualRead needs ReadStale > 0 (the bounded side's budget)")
	}
	if !connect && c.Servers < 2 {
		for _, ph := range c.Phases {
			if ph.Event == EventKill || ph.Event == EventRestart || ph.Event == EventRebalance {
				return fmt.Errorf("loadgen: event %q needs at least 2 servers", ph.Event)
			}
		}
	}
	return nil
}

// op is one scheduled arrival. Latency is measured from scheduled, so
// time spent queued behind slow ops counts against the op.
type op struct {
	kind      twip.OpKind
	scheduled time.Time
	phase     int32
	idx       int   // active-pool index (check/login/subscribe)
	user      int32 // active user id
	target    int32 // subscription target
	poster    int32
	text      string
}

// Runner executes one open-loop run. Create with Run; it is not
// reusable.
type Runner struct {
	cfg     Config
	uni     *Universe
	checker *Checker
	cl      *cluster.Cluster

	// Self-contained members, by address. killAddr dies in EventKill;
	// restartAddr warm-restarts in EventRestart; joined is the spare
	// added by EventJoin (and drained by EventDrain).
	servers     map[string]*server.Server
	dirs        map[string]string
	addrs       []string
	killAddr    string
	restartAddr string
	joined      string

	active    []int32
	lastCheck []atomic.Int64
	clock     atomic.Int64

	// fence is the write-acknowledge fence: post workers hold it
	// shared from expectation-registration through acknowledgment;
	// destructive events take it exclusively, then quiesce, so every
	// acknowledged post is settled onto replicas (or durable state)
	// before a member goes away. This is what makes "no lost
	// acknowledged writes" a fair property to demand under kill.
	fence sync.RWMutex

	phaseIdx  atomic.Int32
	ops       chan op
	stop      chan struct{}
	offered   []atomic.Int64
	completed []atomic.Int64
	errs      []atomic.Int64
	shed      []atomic.Int64
	hists     []*ShardedHist
	elapsed   []time.Duration
}

// Run executes the configured scenario end to end and returns the
// report. Self-contained mode builds, loads, and tears down its own
// cluster; connect mode drives load at cfg.Addrs.
func Run(ctx context.Context, cfg Config) (*Report, error) {
	cfg = cfg.withDefaults()
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	r := &Runner{
		cfg:       cfg,
		uni:       NewUniverse(int32(cfg.Users), cfg.Follows, cfg.Seed),
		servers:   make(map[string]*server.Server),
		dirs:      make(map[string]string),
		ops:       make(chan op, cfg.Queue),
		stop:      make(chan struct{}),
		offered:   make([]atomic.Int64, len(cfg.Phases)),
		completed: make([]atomic.Int64, len(cfg.Phases)),
		errs:      make([]atomic.Int64, len(cfg.Phases)),
		shed:      make([]atomic.Int64, len(cfg.Phases)),
		elapsed:   make([]time.Duration, len(cfg.Phases)),
	}
	r.hists = make([]*ShardedHist, len(cfg.Phases))
	for i := range r.hists {
		r.hists[i] = NewShardedHist(cfg.Workers)
	}

	r.active = make([]int32, cfg.ActiveUsers)
	r.lastCheck = make([]atomic.Int64, cfg.ActiveUsers)
	var tracked []int32
	for i := range r.active {
		r.active[i] = r.uni.ActiveUser(i)
		if i%cfg.TrackEvery == 0 {
			tracked = append(tracked, r.active[i])
		}
	}
	r.checker = NewChecker(cfg.Budget, tracked, r.uni.Followees)

	cfg.Logf("loadgen: seed=%d users=%d active=%d tracked=%d rate=%.0f/s workers=%d budget=%v",
		cfg.Seed, cfg.Users, cfg.ActiveUsers, len(tracked), cfg.Rate, cfg.Workers, cfg.Budget)

	defer r.teardown()
	if err := r.setup(ctx); err != nil {
		return nil, err
	}

	start := time.Now()
	var wg sync.WaitGroup
	for w := 0; w < cfg.Workers; w++ {
		wg.Add(1)
		go func(id int) { defer wg.Done(); r.worker(ctx, id) }(w)
	}
	dispatchDone := make(chan struct{})
	go func() { defer close(dispatchDone); r.dispatch(ctx) }()

	runErr := r.runPhases(ctx)

	close(r.stop)
	<-dispatchDone
	close(r.ops)
	wg.Wait()
	if runErr != nil {
		return nil, runErr
	}

	if err := r.finalSweep(ctx); err != nil {
		return nil, err
	}

	rep := &Report{
		Seed:        cfg.Seed,
		Users:       cfg.Users,
		ActiveUsers: cfg.ActiveUsers,
		Follows:     cfg.Follows,
		Mix:         cfg.Mix,
		OfferedRate: cfg.Rate,
		Workers:     cfg.Workers,
		Servers:     len(r.addrs),
		Replicas:    cfg.Replicas,
		Durable:     cfg.DataDir != "",
		BudgetMs:    cfg.Budget.Milliseconds(),
		ReadStaleMs: cfg.ReadStale.Milliseconds(),
		DualRead:    cfg.DualRead,
		ElapsedSec:  time.Since(start).Seconds(),
		Checker:     r.checker.Report(),
	}
	for i, ph := range cfg.Phases {
		rep.Phases = append(rep.Phases, phaseReport(ph.Name, ph.Event, r.elapsed[i],
			r.offered[i].Load(), r.completed[i].Load(), r.errs[i].Load(), r.shed[i].Load(), r.hists[i]))
	}
	return rep, nil
}

// runPhases walks the script: each phase pins the attribution index,
// fires its event concurrently with traffic, and lasts
// max(Duration, event time).
func (r *Runner) runPhases(ctx context.Context) error {
	for i, ph := range r.cfg.Phases {
		r.phaseIdx.Store(int32(i))
		start := time.Now()
		r.cfg.Logf("loadgen: phase %q begins (event=%q)", ph.Name, ph.Event)
		evErr := make(chan error, 1)
		go func(ev string) { evErr <- r.runEvent(ctx, ev) }(ph.Event)
		select {
		case <-time.After(ph.Duration):
		case <-ctx.Done():
			<-evErr
			return ctx.Err()
		}
		err := <-evErr
		r.elapsed[i] = time.Since(start)
		if err != nil {
			return fmt.Errorf("loadgen: phase %q event %q: %w", ph.Name, ph.Event, err)
		}
	}
	return nil
}

// dispatch is the open-loop arrival clock: exponential inter-arrival
// gaps at the offered rate, independent of completion. A full queue
// sheds the arrival (counted per phase) instead of applying
// back-pressure — the generator never degrades into lock-step.
func (r *Runner) dispatch(ctx context.Context) {
	rng := rand.New(rand.NewSource(r.cfg.Seed))
	sampler := twip.NewOpSampler(r.cfg.Mix)
	posters := r.uni.NewPosterSampler(rand.New(rand.NewSource(r.cfg.Seed + 1)))
	start := time.Now()
	offset := 0.0
	for {
		offset += rng.ExpFloat64() / r.cfg.Rate
		at := start.Add(time.Duration(offset * float64(time.Second)))
		if d := time.Until(at); d > 0 {
			select {
			case <-time.After(d):
			case <-r.stop:
				return
			case <-ctx.Done():
				return
			}
		} else {
			select {
			case <-r.stop:
				return
			case <-ctx.Done():
				return
			default:
			}
		}
		o := r.genOp(rng, sampler, posters)
		o.scheduled = at
		ph := r.phaseIdx.Load()
		o.phase = ph
		r.offered[ph].Add(1)
		select {
		case r.ops <- o:
		default:
			r.shed[ph].Add(1)
		}
	}
}

// genOp draws the next arrival's shape from the mix.
func (r *Runner) genOp(rng *rand.Rand, sampler twip.OpSampler, posters *PosterSampler) op {
	kind := sampler.Sample(rng)
	switch kind {
	case twip.OpPost:
		return op{kind: kind, poster: posters.Sample(),
			text: twip.TweetBody(rng, r.cfg.TweetLen)}
	case twip.OpSubscribe:
		// Tracked users' followee sets are frozen for the run (the
		// checker's expectations depend on them), so subscriptions come
		// from the untracked part of the pool.
		idx := rng.Intn(len(r.active))
		for tries := 0; r.checker.Tracked(r.active[idx]) && tries < 8; tries++ {
			idx = rng.Intn(len(r.active))
		}
		if r.checker.Tracked(r.active[idx]) {
			return op{kind: twip.OpCheck, idx: idx, user: r.active[idx]}
		}
		return op{kind: kind, idx: idx, user: r.active[idx],
			target: int32(rng.Intn(r.cfg.Users))}
	default: // login / check
		idx := rng.Intn(len(r.active))
		return op{kind: kind, idx: idx, user: r.active[idx]}
	}
}

// opTimeout bounds one operation so a stall never wedges a worker.
const opTimeout = 20 * time.Second

// worker drains the queue, executes ops against the cluster, feeds the
// checker, and records latency from the scheduled arrival.
func (r *Runner) worker(ctx context.Context, id int) {
	for o := range r.ops {
		opCtx, cancel := context.WithTimeout(ctx, opTimeout)
		err := r.execOp(opCtx, o)
		cancel()
		if err != nil {
			r.errs[o.phase].Add(1)
			continue
		}
		r.completed[o.phase].Add(1)
		r.hists[o.phase].Record(id, time.Since(o.scheduled).Microseconds())
	}
}

func (r *Runner) execOp(ctx context.Context, o op) error {
	switch o.kind {
	case twip.OpPost:
		// Expectation before write, ack after: the shared fence spans
		// both, so a destructive event can't slip between a successful
		// Put and the checker learning it was acknowledged.
		r.fence.RLock()
		defer r.fence.RUnlock()
		t := r.clock.Add(1)
		r.checker.PostIssued(o.poster, t, o.text)
		err := r.cl.Put(ctx, keys.Join("p", twip.UserID(o.poster), twip.TimeID(t)), o.text)
		if err != nil {
			r.checker.PostFailed(o.poster, t)
			return err
		}
		r.checker.PostAcked(o.poster, t)
		return nil
	case twip.OpSubscribe:
		return r.cl.Put(ctx, keys.Join("s", twip.UserID(o.user), twip.UserID(o.target)), "1")
	default: // OpLogin scans the whole timeline; OpCheck since the last read.
		var since int64
		if o.kind == twip.OpCheck {
			since = r.lastCheck[o.idx].Load()
		}
		mark := r.clock.Load()
		rctx := ctx
		if r.cfg.ReadStale > 0 {
			rctx = freshness.WithBudget(ctx, r.cfg.ReadStale)
		}
		started := time.Now()
		kvs, err := r.scanTimeline(rctx, o.user, since)
		if err != nil {
			return err
		}
		switch {
		case r.cfg.DualRead && r.checker.Tracked(o.user):
			// The freshness oracle: the same window read fresh right
			// after the bounded scan, the pair cross-audited.
			fstart := time.Now()
			fkvs, err := r.scanTimeline(ctx, o.user, since)
			if err != nil {
				return err
			}
			r.checker.OnDualCheck(o.user, since, kvs, fkvs, started, fstart, r.cfg.ReadStale)
		case r.cfg.ReadStale > 0:
			r.checker.OnBoundedCheck(o.user, since, kvs, started, r.cfg.ReadStale)
		default:
			r.checker.OnCheck(o.user, since, kvs, started)
		}
		r.lastCheck[o.idx].Store(mark)
		return nil
	}
}

func (r *Runner) scanTimeline(ctx context.Context, user int32, since int64) ([]core.KV, error) {
	u := twip.UserID(user)
	return r.cl.Scan(ctx, keys.Join("t", u, twip.TimeID(since)), keys.RangeEnd("t", u), 0)
}

// quiesceRetry settles joins and replication, retrying through
// failure-detection windows where a member is (expectedly) down.
func (r *Runner) quiesceRetry(ctx context.Context, budget time.Duration) error {
	deadline := time.Now().Add(budget)
	for {
		err := r.cl.Quiesce(ctx)
		if err == nil {
			return nil
		}
		if !errors.Is(err, perrs.ErrMemberDown) || time.Now().After(deadline) {
			return err
		}
		select {
		case <-time.After(5 * time.Millisecond):
		case <-ctx.Done():
			return ctx.Err()
		}
	}
}

// finalSweep closes the audit: with load stopped and the cluster
// quiesced, every tracked timeline is scanned in full and every
// acknowledged row must be present (budget zero).
func (r *Runner) finalSweep(ctx context.Context) error {
	if err := r.quiesceRetry(ctx, 15*time.Second); err != nil {
		return fmt.Errorf("loadgen: final quiesce: %w", err)
	}
	for _, id := range r.checker.TrackedIDs() {
		kvs, err := r.scanTimeline(ctx, id, 0)
		if err != nil {
			return fmt.Errorf("loadgen: final sweep scan for %s: %w", twip.UserID(id), err)
		}
		r.checker.FinalSweep(id, kvs, time.Now())
	}
	return nil
}
