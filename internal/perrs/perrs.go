// Package perrs holds the typed sentinel errors shared by every layer
// of the pequod tree. It is a leaf package — nothing but the standard
// library below it — so the internal packages that *produce* these
// conditions (client, shard, cluster) and the public package that
// *documents* them (pequod re-exports each sentinel) can both import
// it without a cycle.
//
// The sentinels classify failures; they never travel alone. Producers
// wrap them with context (`fmt.Errorf("cluster: member %s: %w: %v",
// addr, perrs.ErrMemberDown, cause)`) or attach them through an Is
// method on a richer type (client.NotOwnerError, shard.NotOwnerError),
// so callers match with errors.Is and still read a useful message.
package perrs

import "errors"

var (
	// ErrNotOwner reports that the process serving the request does not
	// (or no longer does) own the keys in the cluster partition — a
	// live migration or repair moved them. The cluster client retries
	// these transparently; seeing one at the application layer means a
	// raw client is pointed at a member whose map has moved on.
	ErrNotOwner = errors.New("pequod: not the range owner")

	// ErrMemberDown reports that a cluster member could not be reached
	// (or stopped responding) and retries were exhausted without a
	// repair re-homing its ranges.
	ErrMemberDown = errors.New("pequod: cluster member down")

	// ErrDraining reports that a drain was refused or interrupted:
	// draining the last member, or a member already mid-drain.
	ErrDraining = errors.New("pequod: member draining")

	// ErrConflict reports that an administrative map change lost a race
	// with a concurrent coordinator and was not applied; re-inspect the
	// cluster state and retry if still wanted.
	ErrConflict = errors.New("pequod: conflicting map change")

	// ErrOverBudget reports that a bounded-staleness read could not be
	// served within its freshness budget: the range's lag exceeded the
	// budget, the read fell back to the fresh path, and the fresh path
	// itself failed (most commonly a deadline expiring while it waited
	// for base data). A read that falls back and *succeeds* returns no
	// error — the sentinel marks only budget-attributable failures, so
	// callers can tell "your budget was unservable in time" apart from
	// an ordinary timeout.
	ErrOverBudget = errors.New("pequod: staleness budget exceeded")
)
