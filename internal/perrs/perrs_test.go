// Proves the sentinel contract end to end: each sentinel is matched
// with errors.Is through the real wrap chains the producing layers
// build — the cluster client's routing retries (doKey), pipelined
// batches, the Stats/Quiesce fan-outs, membership drains, and the
// shard pool's bounded-read fallback — not through hand-built
// stand-ins. The package under test is a leaf, so the external test
// package is what lets it look upward at its consumers.
package perrs_test

import (
	"context"
	"errors"
	"fmt"
	"testing"
	"time"

	"pequod/internal/client"
	"pequod/internal/cluster"
	"pequod/internal/keys"
	"pequod/internal/perrs"
	"pequod/internal/rpc"
	"pequod/internal/server"
	"pequod/internal/shard"
)

// startServers launches n single-shard servers and returns their
// addresses and handles (so a test can kill one).
func startServers(t *testing.T, n int) ([]string, []*server.Server) {
	t.Helper()
	addrs := make([]string, n)
	srvs := make([]*server.Server, n)
	for i := range addrs {
		s, err := server.New(server.Config{Name: fmt.Sprintf("m%d", i)})
		if err != nil {
			t.Fatal(err)
		}
		addr, err := s.Start()
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(s.Close)
		addrs[i] = addr
		srvs[i] = s
	}
	return addrs, srvs
}

func newCluster(t *testing.T, cfg cluster.Config) *cluster.Cluster {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	cl, err := cluster.New(ctx, cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { cl.Close() })
	return cl
}

// TestMemberDownChains kills a member and matches ErrMemberDown through
// every chain that can produce it: the point-op retry loop (doKey), the
// pipelined batch fallback (GetBatch retries dead elements through
// doKey), and the Stats and Quiesce member fan-outs.
func TestMemberDownChains(t *testing.T) {
	ctx := context.Background()
	addrs, srvs := startServers(t, 2)
	cl := newCluster(t, cluster.Config{Addrs: addrs, Bounds: []string{"m"}})

	// Both halves serve before the kill.
	for _, k := range []string{"a|1", "z|1"} {
		if err := cl.Put(ctx, k, "v"); err != nil {
			t.Fatal(err)
		}
	}
	srvs[1].Close()

	if _, _, err := cl.Get(ctx, "z|1"); !errors.Is(err, perrs.ErrMemberDown) {
		t.Fatalf("Get after member death = %v, want ErrMemberDown", err)
	}
	if _, err := cl.GetBatch(ctx, []string{"a|1", "z|1"}); !errors.Is(err, perrs.ErrMemberDown) {
		t.Fatalf("GetBatch after member death = %v, want ErrMemberDown", err)
	}
	if _, err := cl.Stats(ctx); !errors.Is(err, perrs.ErrMemberDown) {
		t.Fatalf("Stats after member death = %v, want ErrMemberDown", err)
	}
	if err := cl.Quiesce(ctx); !errors.Is(err, perrs.ErrMemberDown) {
		t.Fatalf("Quiesce after member death = %v, want ErrMemberDown", err)
	}
	// The live half keeps serving: the sentinel marks the dead range,
	// not the cluster.
	if v, found, err := cl.Get(ctx, "a|1"); err != nil || !found || v != "v" {
		t.Fatalf("Get on surviving member = %q %v %v", v, found, err)
	}
}

// TestNotOwnerThroughRawClient points a raw (non-routing) client at the
// wrong member: the server's gate bounces the request with a NotOwner
// reply, which the client surfaces as a *NotOwnerError matching the
// sentinel — while the richer type stays reachable through errors.As.
func TestNotOwnerThroughRawClient(t *testing.T) {
	ctx := context.Background()
	addrs, _ := startServers(t, 2)
	newCluster(t, cluster.Config{Addrs: addrs, Bounds: []string{"m"}}) // publishes the map

	c, err := client.DialContext(ctx, addrs[0])
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	_, err = c.Do(ctx, &rpc.Message{Type: rpc.MsgGet, Key: "z|1"}) // owned by member 1
	if !errors.Is(err, perrs.ErrNotOwner) {
		t.Fatalf("raw Get at wrong member = %v, want ErrNotOwner", err)
	}
	var noe *client.NotOwnerError
	if !errors.As(err, &noe) {
		t.Fatalf("NotOwner reply lost its typed form: %v", err)
	}
	if len(noe.Peers) == 0 {
		t.Fatalf("NotOwnerError carries no peers (map position missing): %+v", noe)
	}
}

// TestDrainingLastMember matches ErrDraining through the refused-drain
// chain: removing the only member is never allowed.
func TestDrainingLastMember(t *testing.T) {
	ctx := context.Background()
	addrs, _ := startServers(t, 1)
	cl := newCluster(t, cluster.Config{Addrs: addrs})
	if err := cl.DrainServer(ctx, addrs[0]); !errors.Is(err, perrs.ErrDraining) {
		t.Fatalf("DrainServer(last member) = %v, want ErrDraining", err)
	}
}

// TestConflictWrapChain matches ErrConflict through the exact wrap
// shape the migration coordinator builds when a concurrent coordinator
// wins the map race (provoking the race itself is inherently timing
// dependent; the wrap shape is the contract under test).
func TestConflictWrapChain(t *testing.T) {
	cause := errors.New("version conflict: map moved to e1 v7")
	err := fmt.Errorf("cluster: moving bound %d: %w: %w", 3, perrs.ErrConflict, cause)
	if !errors.Is(err, perrs.ErrConflict) {
		t.Fatalf("wrapped conflict does not match: %v", err)
	}
	if !errors.Is(err, cause) {
		t.Fatalf("wrapped conflict lost its cause: %v", err)
	}
}

// stubLoader starts loads that never complete — the deterministic way
// to hold a pool's read on its pending-load wait.
type stubLoader struct{}

func (stubLoader) StartLoad(table string, r keys.Range) {}

// TestOverBudgetBoundedReads drives the shard pool's bounded read
// forms onto ranges whose base data never loads: the read needs fresh
// computation regardless of budget, the deadline expires on the load
// wait, and the failure must carry BOTH sentinels — ErrOverBudget (the
// budget was unservable in time) and the pool's ErrDeadline (what
// actually gave out). The same failure without a budget stays a plain
// deadline: over-budget attribution marks bounded reads only.
func TestOverBudgetBoundedReads(t *testing.T) {
	p, err := shard.New(shard.Config{})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(p.Close)
	p.Shard(0).SetLoader(stubLoader{}, "s", "p")
	const timelineJoin = "t|<user>|<time>|<poster> = check s|<user>|<poster> copy p|<poster>|<time>"
	if err := p.InstallText(timelineJoin); err != nil {
		t.Fatal(err)
	}
	const budget = 50 * time.Millisecond
	dl := func() time.Time { return time.Now().Add(5 * time.Millisecond) }

	_, _, err = p.GetBounded("t|ann|100|bob", budget, dl())
	if !errors.Is(err, perrs.ErrOverBudget) || !errors.Is(err, shard.ErrDeadline) {
		t.Fatalf("bounded Get = %v, want ErrOverBudget and ErrDeadline", err)
	}
	if _, err = p.ScanBounded("t|ann|", "t|ann}", 0, nil, nil, budget, dl()); !errors.Is(err, perrs.ErrOverBudget) || !errors.Is(err, shard.ErrDeadline) {
		t.Fatalf("bounded Scan = %v, want ErrOverBudget and ErrDeadline", err)
	}
	if _, err = p.CountBounded("t|ann|", "t|ann}", budget, dl()); !errors.Is(err, perrs.ErrOverBudget) || !errors.Is(err, shard.ErrDeadline) {
		t.Fatalf("bounded Count = %v, want ErrOverBudget and ErrDeadline", err)
	}

	// Fresh reads on the same stuck range: deadline only, never
	// over-budget.
	_, _, err = p.GetDeadline("t|ann|100|bob", dl())
	if !errors.Is(err, shard.ErrDeadline) || errors.Is(err, perrs.ErrOverBudget) {
		t.Fatalf("fresh Get = %v, want plain ErrDeadline", err)
	}
	if _, err = p.ScanDeadline("t|ann|", "t|ann}", 0, nil, nil, dl()); !errors.Is(err, shard.ErrDeadline) || errors.Is(err, perrs.ErrOverBudget) {
		t.Fatalf("fresh Scan = %v, want plain ErrDeadline", err)
	}
	if _, err = p.CountDeadline("t|ann|", "t|ann}", dl()); !errors.Is(err, shard.ErrDeadline) || errors.Is(err, perrs.ErrOverBudget) {
		t.Fatalf("fresh Count = %v, want plain ErrDeadline", err)
	}
}
