// Package rbtree implements the ordered map underlying the Pequod store
// (the paper's §4 uses red-black trees for key-value pairs and
// bookkeeping structures such as updaters and join status ranges).
//
// Three properties distinguish it from a textbook tree and are load-bearing
// for Pequod:
//
//   - Pointer-stable deletion. Deleting a node never moves another node's
//     key or value between node objects (the CLRS transplant is done with
//     pointers, not payload copies), so externally held node pointers —
//     the paper's "output hints" (§4.2) — remain meaningful. A deleted
//     node is marked Dead; hint holders check Dead and fall back to a
//     normal lookup, which is the reference scheme the paper describes.
//
//   - Hinted insertion. InsertAfterHint attaches a new key in O(1)
//     amortized time when it belongs immediately after a known node, the
//     common case when appending fresh posts to a timeline (§4.2).
//
//   - Augmentation. A tree may carry a user aggregate (e.g. the interval
//     tree's max-high-endpoint) maintained through rotations and
//     structural changes via the Augment callback.
package rbtree

// Node is a tree node. Key is immutable for the node's lifetime; Val may
// be replaced by the caller at any time.
type Node[V any] struct {
	key                 string
	Val                 V
	left, right, parent *Node[V]
	red                 bool
	dead                bool
}

// Key returns the node's key.
func (n *Node[V]) Key() string { return n.key }

// Dead reports whether the node has been deleted from its tree. A dead
// node's Key and Val remain readable, but Next/Prev must not be used.
func (n *Node[V]) Dead() bool { return n.dead }

// Next returns the in-order successor, or nil. It must not be called on a
// dead node.
func (n *Node[V]) Next() *Node[V] {
	if n.right != nil {
		return minimum(n.right)
	}
	p := n.parent
	c := n
	for p != nil && c == p.right {
		c = p
		p = p.parent
	}
	return p
}

// Prev returns the in-order predecessor, or nil. It must not be called on
// a dead node.
func (n *Node[V]) Prev() *Node[V] {
	if n.left != nil {
		return maximum(n.left)
	}
	p := n.parent
	c := n
	for p != nil && c == p.left {
		c = p
		p = p.parent
	}
	return p
}

// Left and Right expose children for augmented searches (interval tree
// descent); they are nil at leaves. Parent exposes the parent link so
// augmented trees can refresh aggregates along an upward path.
func (n *Node[V]) Left() *Node[V]   { return n.left }
func (n *Node[V]) Right() *Node[V]  { return n.right }
func (n *Node[V]) Parent() *Node[V] { return n.parent }

// Tree is an ordered map from string keys to values of type V.
// The zero value is an empty tree.
type Tree[V any] struct {
	root *Node[V]
	size int

	// Augment, if set, is called to recompute a node's aggregate value
	// from the node itself and its (possibly nil) children. It is invoked
	// bottom-up after every structural change along the affected path.
	// It must be set before the first insertion and not changed after.
	Augment func(n *Node[V])
}

// Len returns the number of live nodes.
func (t *Tree[V]) Len() int { return t.size }

// Root returns the root node (for augmented descents), or nil.
func (t *Tree[V]) Root() *Node[V] { return t.root }

func minimum[V any](n *Node[V]) *Node[V] {
	for n.left != nil {
		n = n.left
	}
	return n
}

func maximum[V any](n *Node[V]) *Node[V] {
	for n.right != nil {
		n = n.right
	}
	return n
}

// First returns the smallest node, or nil.
func (t *Tree[V]) First() *Node[V] {
	if t.root == nil {
		return nil
	}
	return minimum(t.root)
}

// Last returns the largest node, or nil.
func (t *Tree[V]) Last() *Node[V] {
	if t.root == nil {
		return nil
	}
	return maximum(t.root)
}

// Find returns the node with exactly the given key, or nil.
func (t *Tree[V]) Find(key string) *Node[V] {
	n := t.root
	for n != nil {
		switch {
		case key < n.key:
			n = n.left
		case key > n.key:
			n = n.right
		default:
			return n
		}
	}
	return nil
}

// Seek returns the first node with key >= the argument (lower bound), or
// nil if every key is smaller.
func (t *Tree[V]) Seek(key string) *Node[V] {
	var best *Node[V]
	n := t.root
	for n != nil {
		if n.key >= key {
			best = n
			n = n.left
		} else {
			n = n.right
		}
	}
	return best
}

// SeekBefore returns the last node with key < the argument, or nil.
func (t *Tree[V]) SeekBefore(key string) *Node[V] {
	var best *Node[V]
	n := t.root
	for n != nil {
		if n.key < key {
			best = n
			n = n.right
		} else {
			n = n.left
		}
	}
	return best
}

// SeekAtOrBefore returns the last node with key <= the argument, or nil.
func (t *Tree[V]) SeekAtOrBefore(key string) *Node[V] {
	var best *Node[V]
	n := t.root
	for n != nil {
		if n.key <= key {
			best = n
			n = n.right
		} else {
			n = n.left
		}
	}
	return best
}

func isRed[V any](n *Node[V]) bool { return n != nil && n.red }

func (t *Tree[V]) aug(n *Node[V]) {
	if t.Augment != nil && n != nil {
		t.Augment(n)
	}
}

// augPath recomputes aggregates from n up to the root.
func (t *Tree[V]) augPath(n *Node[V]) {
	if t.Augment == nil {
		return
	}
	for ; n != nil; n = n.parent {
		t.Augment(n)
	}
}

func (t *Tree[V]) rotateLeft(x *Node[V]) {
	y := x.right
	x.right = y.left
	if y.left != nil {
		y.left.parent = x
	}
	y.parent = x.parent
	switch {
	case x.parent == nil:
		t.root = y
	case x == x.parent.left:
		x.parent.left = y
	default:
		x.parent.right = y
	}
	y.left = x
	x.parent = y
	t.aug(x)
	t.aug(y)
}

func (t *Tree[V]) rotateRight(x *Node[V]) {
	y := x.left
	x.left = y.right
	if y.right != nil {
		y.right.parent = x
	}
	y.parent = x.parent
	switch {
	case x.parent == nil:
		t.root = y
	case x == x.parent.right:
		x.parent.right = y
	default:
		x.parent.left = y
	}
	y.right = x
	x.parent = y
	t.aug(x)
	t.aug(y)
}

// Insert adds key with value v. If the key is already present, the
// existing node is returned with existed == true and its value left
// unchanged — callers that want replacement semantics read the old value
// from n.Val, assign the new one, and re-augment if needed. This lets the
// store recover replaced values for reference counting and updater
// notifications.
func (t *Tree[V]) Insert(key string, v V) (n *Node[V], existed bool) {
	var parent *Node[V]
	cur := t.root
	for cur != nil {
		parent = cur
		switch {
		case key < cur.key:
			cur = cur.left
		case key > cur.key:
			cur = cur.right
		default:
			return cur, true
		}
	}
	n = &Node[V]{key: key, Val: v, parent: parent, red: true}
	switch {
	case parent == nil:
		t.root = n
	case key < parent.key:
		parent.left = n
	default:
		parent.right = n
	}
	t.size++
	t.augPath(n)
	t.insertFixup(n)
	return n, false
}

// InsertAfterHint behaves like Insert but first tries to attach the new
// key immediately after hint, which succeeds in O(1) amortized time when
// hint.Key() < key and key precedes hint's successor — the paper's
// output-hint fast path (§4.2). A nil or dead or mismatched hint falls
// back to a normal insertion. Like Insert, it does not overwrite the
// value of an existing key.
func (t *Tree[V]) InsertAfterHint(hint *Node[V], key string, v V) (n *Node[V], existed bool) {
	if hint == nil || hint.dead {
		return t.Insert(key, v)
	}
	if hint.key == key {
		return hint, true
	}
	if hint.key < key {
		succ := hint.Next()
		if succ == nil || key < succ.key {
			n = &Node[V]{key: key, Val: v, red: true}
			if hint.right == nil {
				n.parent = hint
				hint.right = n
			} else {
				// succ is the leftmost node of hint.right and has no left
				// child, so the new node slots in beneath it.
				n.parent = succ
				succ.left = n
			}
			t.size++
			t.augPath(n)
			t.insertFixup(n)
			return n, false
		}
		if succ.key == key {
			return succ, true
		}
	}
	return t.Insert(key, v)
}

func (t *Tree[V]) insertFixup(z *Node[V]) {
	for isRed(z.parent) {
		gp := z.parent.parent // non-nil: a red parent is never the root
		if z.parent == gp.left {
			u := gp.right
			if isRed(u) {
				z.parent.red = false
				u.red = false
				gp.red = true
				z = gp
			} else {
				if z == z.parent.right {
					z = z.parent
					t.rotateLeft(z)
				}
				z.parent.red = false
				gp.red = true
				t.rotateRight(gp)
			}
		} else {
			u := gp.left
			if isRed(u) {
				z.parent.red = false
				u.red = false
				gp.red = true
				z = gp
			} else {
				if z == z.parent.left {
					z = z.parent
					t.rotateRight(z)
				}
				z.parent.red = false
				gp.red = true
				t.rotateLeft(gp)
			}
		}
	}
	t.root.red = false
}

// transplant replaces the subtree rooted at u with the subtree rooted at v.
func (t *Tree[V]) transplant(u, v *Node[V]) {
	switch {
	case u.parent == nil:
		t.root = v
	case u == u.parent.left:
		u.parent.left = v
	default:
		u.parent.right = v
	}
	if v != nil {
		v.parent = u.parent
	}
}

// Delete removes node z from the tree and marks it dead. Other nodes'
// pointers, keys, and values are unaffected (no payload swapping), so
// hints to surviving nodes stay valid. Deleting an already-dead node is a
// no-op.
func (t *Tree[V]) Delete(z *Node[V]) {
	if z == nil || z.dead {
		return
	}
	var x, xParent *Node[V]
	y := z
	yWasRed := y.red
	switch {
	case z.left == nil:
		x = z.right
		xParent = z.parent
		t.transplant(z, z.right)
	case z.right == nil:
		x = z.left
		xParent = z.parent
		t.transplant(z, z.left)
	default:
		y = minimum(z.right)
		yWasRed = y.red
		x = y.right
		if y.parent == z {
			xParent = y
		} else {
			xParent = y.parent
			t.transplant(y, y.right)
			y.right = z.right
			y.right.parent = y
		}
		t.transplant(z, y)
		y.left = z.left
		y.left.parent = y
		y.red = z.red
	}
	t.size--
	z.left, z.right, z.parent = nil, nil, nil
	z.dead = true
	t.augPath(xParent)
	if !yWasRed {
		t.deleteFixup(x, xParent)
	}
}

// DeleteKey removes the node with the given key if present, returning it.
func (t *Tree[V]) DeleteKey(key string) *Node[V] {
	n := t.Find(key)
	if n != nil {
		t.Delete(n)
	}
	return n
}

func (t *Tree[V]) deleteFixup(x, parent *Node[V]) {
	for x != t.root && !isRed(x) {
		if parent == nil {
			break
		}
		if x == parent.left {
			w := parent.right
			if isRed(w) {
				w.red = false
				parent.red = true
				t.rotateLeft(parent)
				w = parent.right
			}
			if !isRed(w.left) && !isRed(w.right) {
				w.red = true
				x = parent
				parent = x.parent
			} else {
				if !isRed(w.right) {
					if w.left != nil {
						w.left.red = false
					}
					w.red = true
					t.rotateRight(w)
					w = parent.right
				}
				w.red = parent.red
				parent.red = false
				if w.right != nil {
					w.right.red = false
				}
				t.rotateLeft(parent)
				x = t.root
				parent = nil
			}
		} else {
			w := parent.left
			if isRed(w) {
				w.red = false
				parent.red = true
				t.rotateRight(parent)
				w = parent.left
			}
			if !isRed(w.right) && !isRed(w.left) {
				w.red = true
				x = parent
				parent = x.parent
			} else {
				if !isRed(w.left) {
					if w.right != nil {
						w.right.red = false
					}
					w.red = true
					t.rotateLeft(w)
					w = parent.left
				}
				w.red = parent.red
				parent.red = false
				if w.left != nil {
					w.left.red = false
				}
				t.rotateRight(parent)
				x = t.root
				parent = nil
			}
		}
	}
	if x != nil {
		x.red = false
	}
}

// Ascend calls fn for each node with lo <= key < hi in ascending order
// (hi == "" means unbounded), stopping early if fn returns false.
func (t *Tree[V]) Ascend(lo, hi string, fn func(n *Node[V]) bool) {
	for n := t.Seek(lo); n != nil && (hi == "" || n.key < hi); n = n.Next() {
		if !fn(n) {
			return
		}
	}
}

// CountRange returns the number of keys in [lo, hi).
func (t *Tree[V]) CountRange(lo, hi string) int {
	c := 0
	t.Ascend(lo, hi, func(*Node[V]) bool { c++; return true })
	return c
}
