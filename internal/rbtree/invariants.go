package rbtree

import "fmt"

// CheckInvariants validates the red-black and BST invariants plus parent
// pointer and size consistency. It is exported for tests (including
// property-based tests in dependent packages); it is O(n).
func (t *Tree[V]) CheckInvariants() error {
	if t.root == nil {
		if t.size != 0 {
			return fmt.Errorf("empty tree with size %d", t.size)
		}
		return nil
	}
	if t.root.parent != nil {
		return fmt.Errorf("root has a parent")
	}
	if t.root.red {
		return fmt.Errorf("root is red")
	}
	count := 0
	if _, err := checkNode(t.root, "", "", &count); err != nil {
		return err
	}
	if count != t.size {
		return fmt.Errorf("size %d but %d nodes", t.size, count)
	}
	return nil
}

// checkNode verifies the subtree at n and returns its black height.
// lo/hi bound the permitted key range ("" = unbounded on that side).
func checkNode[V any](n *Node[V], lo, hi string, count *int) (int, error) {
	if n == nil {
		return 1, nil
	}
	*count++
	if n.dead {
		return 0, fmt.Errorf("dead node %q still linked", n.key)
	}
	if lo != "" && n.key <= lo {
		return 0, fmt.Errorf("key %q violates lower bound %q", n.key, lo)
	}
	if hi != "" && n.key >= hi {
		return 0, fmt.Errorf("key %q violates upper bound %q", n.key, hi)
	}
	if n.left != nil && n.left.parent != n {
		return 0, fmt.Errorf("bad parent pointer at left child of %q", n.key)
	}
	if n.right != nil && n.right.parent != n {
		return 0, fmt.Errorf("bad parent pointer at right child of %q", n.key)
	}
	if n.red && (isRed(n.left) || isRed(n.right)) {
		return 0, fmt.Errorf("red node %q has a red child", n.key)
	}
	lh, err := checkNode(n.left, lo, n.key, count)
	if err != nil {
		return 0, err
	}
	rh, err := checkNode(n.right, n.key, hi, count)
	if err != nil {
		return 0, err
	}
	if lh != rh {
		return 0, fmt.Errorf("black height mismatch at %q: %d vs %d", n.key, lh, rh)
	}
	if !n.red {
		lh++
	}
	return lh, nil
}
