package rbtree

import (
	"fmt"
	"math/rand"
	"sort"
	"testing"
)

func collect(t *Tree[int]) []string {
	var out []string
	for n := t.First(); n != nil; n = n.Next() {
		out = append(out, n.Key())
	}
	return out
}

func TestBasicInsertFind(t *testing.T) {
	tr := &Tree[int]{}
	keysIn := []string{"m", "c", "t", "a", "e", "p", "z", "b"}
	for i, k := range keysIn {
		n, existed := tr.Insert(k, i)
		if existed {
			t.Fatalf("unexpected existing key %q", k)
		}
		if n.Key() != k || n.Val != i {
			t.Fatalf("bad node for %q", k)
		}
	}
	if tr.Len() != len(keysIn) {
		t.Fatalf("Len = %d", tr.Len())
	}
	for i, k := range keysIn {
		n := tr.Find(k)
		if n == nil || n.Val != i {
			t.Fatalf("Find(%q) failed", k)
		}
	}
	if tr.Find("nope") != nil {
		t.Fatal("Find of absent key")
	}
	if err := tr.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	got := collect(tr)
	want := append([]string(nil), keysIn...)
	sort.Strings(want)
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("order: got %v want %v", got, want)
		}
	}
}

func TestInsertExisting(t *testing.T) {
	tr := &Tree[int]{}
	tr.Insert("k", 1)
	n, existed := tr.Insert("k", 2)
	if !existed || tr.Len() != 1 {
		t.Fatal("existing key not detected")
	}
	if n.Val != 1 {
		t.Fatal("Insert must not overwrite an existing value")
	}
	n.Val = 2 // caller-controlled replacement
	if got := tr.Find("k"); got.Val != 2 {
		t.Fatal("replacement via node failed")
	}
}

func TestSeek(t *testing.T) {
	tr := &Tree[int]{}
	for _, k := range []string{"b", "d", "f", "h"} {
		tr.Insert(k, 0)
	}
	cases := []struct{ in, want string }{
		{"a", "b"}, {"b", "b"}, {"c", "d"}, {"h", "h"}, {"i", ""},
	}
	for _, c := range cases {
		n := tr.Seek(c.in)
		got := ""
		if n != nil {
			got = n.Key()
		}
		if got != c.want {
			t.Errorf("Seek(%q) = %q, want %q", c.in, got, c.want)
		}
	}
	if n := tr.SeekBefore("d"); n == nil || n.Key() != "b" {
		t.Error("SeekBefore(d)")
	}
	if n := tr.SeekBefore("b"); n != nil {
		t.Error("SeekBefore(b) should be nil")
	}
	if n := tr.SeekAtOrBefore("d"); n == nil || n.Key() != "d" {
		t.Error("SeekAtOrBefore(d)")
	}
	if n := tr.SeekAtOrBefore("e"); n == nil || n.Key() != "d" {
		t.Error("SeekAtOrBefore(e)")
	}
	if n := tr.SeekAtOrBefore("a"); n != nil {
		t.Error("SeekAtOrBefore(a) should be nil")
	}
}

func TestDeletePointerStability(t *testing.T) {
	tr := &Tree[int]{}
	var nodes []*Node[int]
	for i := 0; i < 100; i++ {
		n, _ := tr.Insert(fmt.Sprintf("k%03d", i), i)
		nodes = append(nodes, n)
	}
	// Delete every other node; surviving node objects must keep their
	// key/value bindings (pointer-stable deletion for output hints).
	for i := 0; i < 100; i += 2 {
		tr.Delete(nodes[i])
		if !nodes[i].Dead() {
			t.Fatalf("node %d not marked dead", i)
		}
	}
	for i := 1; i < 100; i += 2 {
		if nodes[i].Dead() {
			t.Fatalf("live node %d marked dead", i)
		}
		if nodes[i].Key() != fmt.Sprintf("k%03d", i) || nodes[i].Val != i {
			t.Fatalf("node %d payload moved: %q=%d", i, nodes[i].Key(), nodes[i].Val)
		}
	}
	if err := tr.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	if tr.Len() != 50 {
		t.Fatalf("Len = %d", tr.Len())
	}
	// Deleting a dead node is a no-op.
	tr.Delete(nodes[0])
	if tr.Len() != 50 {
		t.Fatal("double delete changed size")
	}
}

func TestInsertAfterHint(t *testing.T) {
	tr := &Tree[int]{}
	hint, _ := tr.Insert("t|ann|100", 0)
	tr.Insert("t|ann|999", 1)
	// Monotone appends via hint.
	for i := 101; i < 200; i++ {
		n, existed := tr.InsertAfterHint(hint, fmt.Sprintf("t|ann|%03d", i), i)
		if existed {
			t.Fatalf("unexpected replace at %d", i)
		}
		hint = n
	}
	if err := tr.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	got := collect(tr)
	if !sort.StringsAreSorted(got) || len(got) != 101 {
		t.Fatalf("bad tree after hinted inserts: %d keys", len(got))
	}
	// Hint pointing at the wrong place still works (falls back).
	n, _ := tr.InsertAfterHint(hint, "a|000", -1)
	if n.Key() != "a|000" || tr.Find("a|000") == nil {
		t.Fatal("fallback insert failed")
	}
	// Hint with equal key returns the existing node without overwriting.
	n2, existed := tr.InsertAfterHint(n, "a|000", -2)
	if !existed || n2 != n || n.Val != -1 {
		t.Fatal("hint equal-key lookup failed")
	}
	// Dead hint falls back.
	tr.Delete(n)
	if _, existed := tr.InsertAfterHint(n, "a|001", 7); existed {
		t.Fatal("dead hint insert failed")
	}
	if err := tr.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestAscendAndCount(t *testing.T) {
	tr := &Tree[int]{}
	for i := 0; i < 20; i++ {
		tr.Insert(fmt.Sprintf("%02d", i), i)
	}
	var got []string
	tr.Ascend("05", "10", func(n *Node[int]) bool {
		got = append(got, n.Key())
		return true
	})
	if len(got) != 5 || got[0] != "05" || got[4] != "09" {
		t.Fatalf("Ascend = %v", got)
	}
	if c := tr.CountRange("05", "10"); c != 5 {
		t.Fatalf("CountRange = %d", c)
	}
	// Unbounded hi.
	if c := tr.CountRange("15", ""); c != 5 {
		t.Fatalf("unbounded CountRange = %d", c)
	}
	// Early stop.
	calls := 0
	tr.Ascend("", "", func(n *Node[int]) bool { calls++; return calls < 3 })
	if calls != 3 {
		t.Fatalf("early stop: %d calls", calls)
	}
}

func TestPrevIteration(t *testing.T) {
	tr := &Tree[int]{}
	for i := 0; i < 50; i++ {
		tr.Insert(fmt.Sprintf("%02d", i), i)
	}
	n := tr.Last()
	for i := 49; i >= 0; i-- {
		if n == nil || n.Val != i {
			t.Fatalf("Prev iteration broke at %d", i)
		}
		n = n.Prev()
	}
	if n != nil {
		t.Fatal("Prev past First should be nil")
	}
}

// TestRandomizedAgainstModel is the package's main property test: a long
// random op sequence compared against a map + sorted-slice reference model,
// with RB invariants checked throughout.
func TestRandomizedAgainstModel(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	tr := &Tree[int]{}
	model := map[string]int{}
	var hint *Node[int]
	keyOf := func() string { return fmt.Sprintf("k%04d", rng.Intn(3000)) }
	for step := 0; step < 30000; step++ {
		switch op := rng.Intn(10); {
		case op < 4: // insert (caller-side replacement on existing keys)
			k := keyOf()
			v := rng.Int()
			n, _ := tr.Insert(k, v)
			n.Val = v
			model[k] = v
		case op < 6: // hinted insert
			k := keyOf()
			v := rng.Int()
			n, _ := tr.InsertAfterHint(hint, k, v)
			n.Val = v
			hint = n
			model[k] = v
		case op < 8: // delete
			k := keyOf()
			n := tr.DeleteKey(k)
			if _, ok := model[k]; ok != (n != nil) {
				t.Fatalf("delete mismatch for %q at step %d", k, step)
			}
			delete(model, k)
			if hint != nil && hint.Dead() {
				hint = nil
			}
		case op < 9: // find
			k := keyOf()
			n := tr.Find(k)
			v, ok := model[k]
			if ok != (n != nil) || (ok && n.Val != v) {
				t.Fatalf("find mismatch for %q at step %d", k, step)
			}
		default: // seek
			k := keyOf()
			n := tr.Seek(k)
			var want string
			for mk := range model {
				if mk >= k && (want == "" || mk < want) {
					want = mk
				}
			}
			got := ""
			if n != nil {
				got = n.Key()
			}
			if got != want {
				t.Fatalf("seek mismatch for %q: got %q want %q", k, got, want)
			}
		}
		if step%997 == 0 {
			if err := tr.CheckInvariants(); err != nil {
				t.Fatalf("step %d: %v", step, err)
			}
		}
	}
	if err := tr.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	if tr.Len() != len(model) {
		t.Fatalf("size mismatch: tree %d model %d", tr.Len(), len(model))
	}
	var want []string
	for k := range model {
		want = append(want, k)
	}
	sort.Strings(want)
	got := collect(tr)
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("final order mismatch at %d", i)
		}
	}
}

func TestAugmentMaintained(t *testing.T) {
	// Aggregate: subtree size stored in Val; verified after heavy churn.
	type agg struct{ sub int }
	tr := &Tree[*agg]{}
	tr.Augment = func(n *Node[*agg]) {
		s := 1
		if n.Left() != nil {
			s += n.Left().Val.sub
		}
		if n.Right() != nil {
			s += n.Right().Val.sub
		}
		n.Val.sub = s
	}
	rng := rand.New(rand.NewSource(7))
	live := map[string]bool{}
	for i := 0; i < 20000; i++ {
		k := fmt.Sprintf("%04d", rng.Intn(2000))
		if rng.Intn(3) == 0 {
			tr.DeleteKey(k)
			delete(live, k)
		} else {
			if !live[k] {
				tr.Insert(k, &agg{})
				live[k] = true
			}
		}
	}
	var check func(n *Node[*agg]) int
	check = func(n *Node[*agg]) int {
		if n == nil {
			return 0
		}
		s := 1 + check(n.Left()) + check(n.Right())
		if n.Val.sub != s {
			t.Fatalf("augment stale at %q: have %d want %d", n.Key(), n.Val.sub, s)
		}
		return s
	}
	if got := check(tr.Root()); got != tr.Len() {
		t.Fatalf("total %d != len %d", got, tr.Len())
	}
}

func BenchmarkInsertSequential(b *testing.B) {
	tr := &Tree[int]{}
	ks := make([]string, b.N)
	for i := range ks {
		ks[i] = fmt.Sprintf("k%09d", i)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tr.Insert(ks[i], i)
	}
}

func BenchmarkInsertSequentialHinted(b *testing.B) {
	tr := &Tree[int]{}
	ks := make([]string, b.N)
	for i := range ks {
		ks[i] = fmt.Sprintf("k%09d", i)
	}
	var hint *Node[int]
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		hint, _ = tr.InsertAfterHint(hint, ks[i], i)
	}
}

func BenchmarkFind(b *testing.B) {
	tr := &Tree[int]{}
	const n = 1 << 16
	ks := make([]string, n)
	for i := 0; i < n; i++ {
		ks[i] = fmt.Sprintf("k%09d", i)
		tr.Insert(ks[i], i)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tr.Find(ks[i&(n-1)])
	}
}
