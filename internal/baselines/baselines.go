// Package baselines provides the comparison systems of the paper's
// Figure 7 evaluation (§5.2): a Redis-like hash store with sorted-set
// values, a memcached-like string store, and (in the sqlsim subpackage) a
// PostgreSQL-like relational engine with triggers.
//
// All baselines speak the Pequod wire framing with generic command
// frames, so the system comparison measures engine work — data
// structures, maintenance strategy, operation count — on an equal
// transport footing, as the paper's loopback-TCP setup does.
package baselines

import (
	"bufio"
	"errors"
	"net"
	"sync"

	"pequod/internal/rpc"
)

// Handler executes one command; args[0] is the verb. Implementations are
// called from multiple connection goroutines and must synchronize
// internally (the engines here use one mutex, matching the single-writer
// model used across this repository — parallel deployments run one
// process per core, §5.2).
type Handler interface {
	Command(args []string) (*rpc.Message, error)
}

// Server serves a Handler over the shared framing.
type Server struct {
	h  Handler
	ln net.Listener

	mu     sync.Mutex
	closed bool
	conns  map[net.Conn]struct{}
	wg     sync.WaitGroup
}

// NewServer wraps a handler.
func NewServer(h Handler) *Server {
	return &Server{h: h, conns: make(map[net.Conn]struct{})}
}

// Start listens on a loopback port and serves in the background.
func (s *Server) Start() (string, error) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return "", err
	}
	s.mu.Lock()
	s.ln = ln
	s.mu.Unlock()
	go s.serve(ln)
	return ln.Addr().String(), nil
}

func (s *Server) serve(ln net.Listener) {
	for {
		c, err := ln.Accept()
		if err != nil {
			return
		}
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			c.Close()
			return
		}
		s.conns[c] = struct{}{}
		s.mu.Unlock()
		s.wg.Add(1)
		go s.handleConn(c)
	}
}

func (s *Server) handleConn(c net.Conn) {
	defer s.wg.Done()
	defer func() {
		s.mu.Lock()
		delete(s.conns, c)
		s.mu.Unlock()
		c.Close()
	}()
	br := bufio.NewReaderSize(c, 64<<10)
	bw := bufio.NewWriterSize(c, 64<<10)
	var rs, ws []byte
	for {
		m, sc, err := rpc.ReadMessage(br, rs)
		if err != nil {
			return
		}
		rs = sc
		var reply *rpc.Message
		if m.Type != rpc.MsgCommand || len(m.Args) == 0 {
			reply = rpc.ErrReply(m.Seq, errors.New("baseline: want a command frame"))
		} else {
			r, err := s.h.Command(m.Args)
			if err != nil {
				reply = rpc.ErrReply(m.Seq, err)
			} else {
				if r == nil {
					r = &rpc.Message{}
				}
				r.Type = rpc.MsgReply
				r.Seq = m.Seq
				r.Status = rpc.StatusOK
				reply = r
			}
		}
		ws, err = rpc.WriteMessage(bw, reply, ws)
		if err != nil {
			return
		}
		if br.Buffered() == 0 { // batch flushes across pipelined requests
			if err := bw.Flush(); err != nil {
				return
			}
		}
	}
}

// Close stops the server.
func (s *Server) Close() {
	s.mu.Lock()
	s.closed = true
	ln := s.ln
	conns := make([]net.Conn, 0, len(s.conns))
	for c := range s.conns {
		conns = append(conns, c)
	}
	s.mu.Unlock()
	if ln != nil {
		ln.Close()
	}
	for _, c := range conns {
		c.Close()
	}
	s.wg.Wait()
}
