package baselines

import (
	"errors"
	"fmt"
	"sync"
	"testing"

	"pequod/internal/client"
	"pequod/internal/rpc"
)

// countingHandler records commands and echoes their verb.
type countingHandler struct {
	mu    sync.Mutex
	calls int
}

func (h *countingHandler) Command(args []string) (*rpc.Message, error) {
	h.mu.Lock()
	h.calls++
	h.mu.Unlock()
	if args[0] == "FAIL" {
		return nil, errors.New("requested failure")
	}
	return &rpc.Message{Value: args[0]}, nil
}

func TestServeCommands(t *testing.T) {
	h := &countingHandler{}
	s := NewServer(h)
	addr, err := s.Start()
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	c, err := client.Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	m, err := c.Command("PING", "x")
	if err != nil || m.Value != "PING" {
		t.Fatalf("Command = %v %v", m, err)
	}
	// Handler errors surface as error replies, connection stays up.
	if _, err := c.Command("FAIL"); err == nil {
		t.Fatal("handler error not surfaced")
	}
	if _, err := c.Command("PING"); err != nil {
		t.Fatal("connection died after error reply")
	}
	// Non-command frames are rejected gracefully.
	if _, _, err := c.Get("x"); err == nil {
		t.Fatal("non-command frame accepted")
	}
}

func TestConcurrentClients(t *testing.T) {
	h := &countingHandler{}
	s := NewServer(h)
	addr, err := s.Start()
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			c, err := client.Dial(addr)
			if err != nil {
				t.Error(err)
				return
			}
			defer c.Close()
			futs := make([]*client.Future, 100)
			for i := range futs {
				futs[i] = c.CommandAsync(fmt.Sprintf("cmd-%d-%d", g, i))
			}
			for _, f := range futs {
				if _, err := f.Wait(); err != nil {
					t.Error(err)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.calls != 800 {
		t.Fatalf("calls = %d", h.calls)
	}
}
