package sqlsim

import (
	"fmt"
	"testing"
)

func TestParseInsert(t *testing.T) {
	st, err := ParseSQL("INSERT INTO posts VALUES ('u9', '0000000100', 'hello world')")
	if err != nil {
		t.Fatal(err)
	}
	if st.Kind != "INSERT" || st.Table != "posts" || len(st.Values) != 3 || st.Values[2] != "hello world" {
		t.Fatalf("parsed %+v", st)
	}
	// Escaped quotes.
	st, err = ParseSQL("INSERT INTO t VALUES ('it''s')")
	if err != nil || st.Values[0] != "it's" {
		t.Fatalf("quote escape: %+v %v", st, err)
	}
	// Trailing semicolon accepted.
	if _, err := ParseSQL("INSERT INTO t VALUES ('v');"); err != nil {
		t.Fatal(err)
	}
}

func TestParseSelect(t *testing.T) {
	st, err := ParseSQL("SELECT * FROM timelines WHERE user = 'ann' AND time >= '100' ORDER BY time, poster")
	if err != nil {
		t.Fatal(err)
	}
	if st.Kind != "SELECT" || st.Table != "timelines" {
		t.Fatalf("parsed %+v", st)
	}
	if len(st.Where) != 2 || st.Where[0].Op != "=" || st.Where[1].Op != ">=" {
		t.Fatalf("where = %+v", st.Where)
	}
	if len(st.OrderBy) != 2 || st.OrderBy[1] != "poster" {
		t.Fatalf("order by = %v", st.OrderBy)
	}
	// Case-insensitive keywords.
	if _, err := ParseSQL("select * from t where a = 'x'"); err != nil {
		t.Fatal(err)
	}
	// Bare select.
	if _, err := ParseSQL("SELECT * FROM t"); err != nil {
		t.Fatal(err)
	}
}

func TestParseDelete(t *testing.T) {
	st, err := ParseSQL("DELETE FROM subs WHERE user = 'ann' AND poster = 'bob'")
	if err != nil {
		t.Fatal(err)
	}
	if st.Kind != "DELETE" || len(st.Where) != 2 {
		t.Fatalf("parsed %+v", st)
	}
}

func TestParseErrors(t *testing.T) {
	for _, src := range []string{
		"",
		"FROB x",
		"INSERT posts VALUES ('a')",
		"INSERT INTO posts ('a')",
		"INSERT INTO posts VALUES ('a' 'b')",
		"INSERT INTO posts VALUES (unquoted)",
		"SELECT x FROM t",
		"SELECT * FROM t WHERE a ! 'b'",
		"SELECT * FROM t WHERE a = b",
		"SELECT * FROM t ORDER time",
		"DELETE FROM t",
		"SELECT * FROM t WHERE a = 'unterminated",
		"SELECT * FROM t extra garbage",
	} {
		if _, err := ParseSQL(src); err == nil {
			t.Errorf("ParseSQL(%q) should fail", src)
		}
	}
}

func setupTL(t *testing.T) *DB {
	t.Helper()
	db := New()
	db.CreateTable(Schema{Name: "tl", Cols: cols("user", "time", "poster", "tweet"), Key: []int{0, 1, 2}})
	for u := 0; u < 3; u++ {
		for ts := 0; ts < 10; ts++ {
			row := Row{fmt.Sprintf("u%d", u), fmt.Sprintf("%03d", ts), "p", "x"}
			if err := db.Insert("tl", row); err != nil {
				t.Fatal(err)
			}
		}
	}
	return db
}

func TestQueryIndexRangePlan(t *testing.T) {
	db := setupTL(t)
	// Equality on the key prefix plus a range on the next key column:
	// the planner must produce a bounded index scan.
	rows, err := db.Query("SELECT * FROM tl WHERE user = 'u1' AND time >= '005' ORDER BY time")
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 5 {
		t.Fatalf("rows = %d", len(rows))
	}
	for _, r := range rows {
		if r[0] != "u1" || r[1] < "005" {
			t.Fatalf("row out of plan bounds: %v", r)
		}
	}
	// Upper bounds.
	rows, _ = db.Query("SELECT * FROM tl WHERE user = 'u1' AND time >= '002' AND time < '004'")
	if len(rows) != 2 {
		t.Fatalf("bounded rows = %d", len(rows))
	}
	// <= is inclusive.
	rows, _ = db.Query("SELECT * FROM tl WHERE user = 'u1' AND time <= '002'")
	if len(rows) != 3 {
		t.Fatalf("inclusive rows = %d", len(rows))
	}
	// > is exclusive.
	rows, _ = db.Query("SELECT * FROM tl WHERE user = 'u1' AND time > '008'")
	if len(rows) != 1 {
		t.Fatalf("exclusive rows = %d", len(rows))
	}
}

func TestQueryResidualFilterAndSort(t *testing.T) {
	db := setupTL(t)
	// A non-key-prefix condition becomes a filter; ORDER BY not matching
	// the index forces a sort.
	rows, err := db.Query("SELECT * FROM tl WHERE time = '003' ORDER BY user")
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("filtered rows = %d", len(rows))
	}
	for i := 1; i < len(rows); i++ {
		if rows[i][0] < rows[i-1][0] {
			t.Fatal("sort violated")
		}
	}
	// Unknown column errors.
	if _, err := db.Query("SELECT * FROM tl WHERE nope = 'x'"); err == nil {
		t.Fatal("unknown column accepted")
	}
	if _, err := db.Query("SELECT * FROM missing"); err == nil {
		t.Fatal("missing table accepted")
	}
	if _, err := db.Query("SELECT * FROM tl ORDER BY nope"); err == nil {
		t.Fatal("unknown ORDER BY column accepted")
	}
}

func TestExecPaths(t *testing.T) {
	db := New()
	db.CreateTable(Schema{Name: "t", Cols: cols("a", "b"), Key: []int{0}})
	if err := db.Exec("INSERT INTO t VALUES ('k1', 'v1')"); err != nil {
		t.Fatal(err)
	}
	if err := db.Exec("DELETE FROM t WHERE a = 'k1'"); err != nil {
		t.Fatal(err)
	}
	if n, _ := db.Count("t", "", ""); n != 0 {
		t.Fatalf("count = %d", n)
	}
	// DELETE requires full PK and equality.
	if err := db.Exec("DELETE FROM t WHERE b = 'v'"); err == nil {
		t.Fatal("partial-key delete accepted")
	}
	// SELECT through Exec is rejected.
	if err := db.Exec("SELECT * FROM t"); err == nil {
		t.Fatal("SELECT via Exec accepted")
	}
	if err := db.Exec("INSERT INTO missing VALUES ('x')"); err == nil {
		t.Fatal("missing table accepted")
	}
}

func TestQuote(t *testing.T) {
	if Quote("plain") != "'plain'" {
		t.Fatal("plain quote")
	}
	if Quote("it's") != "'it''s'" {
		t.Fatal("escaped quote")
	}
	// Round trip through the parser.
	st, err := ParseSQL("INSERT INTO t VALUES (" + Quote("a 'quoted' value") + ")")
	if err != nil || st.Values[0] != "a 'quoted' value" {
		t.Fatalf("round trip: %+v %v", st, err)
	}
}

func BenchmarkParseSelect(b *testing.B) {
	src := "SELECT * FROM timelines WHERE user = 'u0001234' AND time >= '0000000100' ORDER BY time"
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := ParseSQL(src); err != nil {
			b.Fatal(err)
		}
	}
}
