package sqlsim

import (
	"fmt"
	"testing"
)

func twoColTable(db *DB, name string) {
	db.CreateTable(Schema{Name: name, Cols: cols("a", "b"), Key: []int{0}})
}

func TestInsertSelectDelete(t *testing.T) {
	db := New()
	twoColTable(db, "t")
	if err := db.Insert("t", Row{"k1", "v1"}); err != nil {
		t.Fatal(err)
	}
	if err := db.Insert("t", Row{"k2", "v2"}); err != nil {
		t.Fatal(err)
	}
	rows, err := db.SelectRange("t", "", "")
	if err != nil || len(rows) != 2 {
		t.Fatalf("select = %v, %v", rows, err)
	}
	// Replacement by primary key.
	db.Insert("t", Row{"k1", "v1b"})
	rows, _ = db.SelectRange("t", "k1", "k1\x00")
	if len(rows) != 1 || rows[0][1] != "v1b" {
		t.Fatalf("replace = %v", rows)
	}
	if !db.Delete("t", "k1") {
		t.Fatal("delete")
	}
	if db.Delete("t", "k1") {
		t.Fatal("double delete")
	}
	if n, _ := db.Count("t", "", ""); n != 1 {
		t.Fatalf("count = %d", n)
	}
}

func TestRowsAreCopies(t *testing.T) {
	db := New()
	twoColTable(db, "t")
	in := Row{"k", "v"}
	db.Insert("t", in)
	in[1] = "mutated"
	rows, _ := db.SelectRange("t", "", "")
	if rows[0][1] != "v" {
		t.Fatal("insert did not copy the row")
	}
	rows[0][1] = "also mutated"
	rows2, _ := db.SelectRange("t", "", "")
	if rows2[0][1] != "v" {
		t.Fatal("select did not copy the row")
	}
}

func TestErrors(t *testing.T) {
	db := New()
	twoColTable(db, "t")
	if err := db.Insert("missing", Row{"a"}); err == nil {
		t.Fatal("insert into missing table")
	}
	if err := db.Insert("t", Row{"only-one"}); err == nil {
		t.Fatal("wrong arity accepted")
	}
	if _, err := db.SelectRange("missing", "", ""); err == nil {
		t.Fatal("select from missing table")
	}
	if db.Delete("missing", "k") {
		t.Fatal("delete from missing table")
	}
}

func TestTriggersAndWAL(t *testing.T) {
	db := New()
	twoColTable(db, "src")
	twoColTable(db, "dst")
	db.OnInsert("src", func(db *DB, row Row) {
		db.InsertFromTrigger("dst", Row{row[0], "copied:" + row[1]})
	})
	db.Insert("src", Row{"k", "v"})
	rows, _ := db.SelectRange("dst", "", "")
	if len(rows) != 1 || rows[0][1] != "copied:v" {
		t.Fatalf("trigger output = %v", rows)
	}
	if db.TriggerRuns != 1 || db.Inserts != 2 {
		t.Fatalf("stats: triggers=%d inserts=%d", db.TriggerRuns, db.Inserts)
	}
	if db.WALBytes == 0 {
		t.Fatal("no WAL bytes recorded")
	}
}

func TestTwipProfile(t *testing.T) {
	h := NewTwip()
	sql := func(stmt string) ([]rpcKV, error) {
		m, err := h.Command([]string{"SQL", stmt})
		if err != nil {
			return nil, err
		}
		out := make([]rpcKV, len(m.KVs))
		for i, kv := range m.KVs {
			out[i] = rpcKV{kv.Key, kv.Value}
		}
		return out, nil
	}
	// Subscribe, then post: the trigger must fan out.
	if _, err := sql("INSERT INTO subs VALUES ('u1', 'u9')"); err != nil {
		t.Fatal(err)
	}
	if _, err := sql("INSERT INTO posts VALUES ('u9', '0000000100', 'hello')"); err != nil {
		t.Fatal(err)
	}
	kvs, err := sql("SELECT * FROM timelines WHERE user = 'u1' AND time >= '0000000000' ORDER BY time")
	if err != nil || len(kvs) != 1 || kvs[0].v != "hello" {
		t.Fatalf("check = %v, %v", kvs, err)
	}
	// Post first, subscribe later: the subs trigger must backfill.
	sql("INSERT INTO posts VALUES ('u8', '0000000050', 'old post')")
	sql("INSERT INTO subs VALUES ('u2', 'u8')")
	kvs, _ = sql("SELECT * FROM timelines WHERE user = 'u2' AND time >= '0000000000' ORDER BY time")
	if len(kvs) != 1 || kvs[0].v != "old post" {
		t.Fatalf("backfill = %v", kvs)
	}
	// Since-bound filters.
	sql("INSERT INTO posts VALUES ('u9', '0000000200', 'newer')")
	kvs, _ = sql("SELECT * FROM timelines WHERE user = 'u1' AND time >= '0000000150' ORDER BY time")
	if len(kvs) != 1 || kvs[0].v != "newer" {
		t.Fatalf("since filter = %v", kvs)
	}
	// Values with quotes survive escaping.
	if _, err := sql("INSERT INTO posts VALUES ('u9', '0000000300', " + Quote("it''s") + ")"); err == nil {
		// Quote already escapes; passing a pre-escaped string double-escapes,
		// so build it properly:
		_ = err
	}
	if _, err := sql("INSERT INTO posts VALUES ('u9', '0000000301', " + Quote("it's a tweet") + ")"); err != nil {
		t.Fatalf("quoted insert: %v", err)
	}
	kvs, _ = sql("SELECT * FROM timelines WHERE user = 'u1' AND time >= '0000000301' ORDER BY time")
	if len(kvs) != 1 || kvs[0].v != "it's a tweet" {
		t.Fatalf("quote roundtrip = %v", kvs)
	}
	// Bad SQL errors.
	if _, err := sql("UPDATE posts SET x = 'y'"); err == nil {
		t.Fatal("unsupported statement accepted")
	}
	if _, err := h.Command([]string{"FROB"}); err == nil {
		t.Fatal("unknown twip command accepted")
	}
}

type rpcKV struct{ k, v string }

func TestSelectPrefix(t *testing.T) {
	db := New()
	db.CreateTable(Schema{Name: "tl", Cols: cols("u", "t", "p"), Key: []int{0, 1, 2}})
	for i := 0; i < 5; i++ {
		db.Insert("tl", Row{"u1", fmt.Sprintf("%03d", i), "x"})
	}
	db.Insert("tl", Row{"u2", "000", "x"})
	rows, err := db.SelectPrefix("tl", "u1")
	if err != nil || len(rows) != 5 {
		t.Fatalf("prefix select = %d rows, %v", len(rows), err)
	}
}
