// Package sqlsim is the PostgreSQL 9.1 stand-in of the Figure 7
// comparison (§5.2): a minimal in-memory relational engine whose insert
// triggers maintain a timeline table, approximating the paper's
// "PostgreSQL ... we use triggers to get a similar effect" to
// automatically-updated materialized views.
//
// The engine deliberately pays the costs a real in-memory relational
// database pays even with relaxed durability (the paper disabled fsync,
// synchronous commit, and full-page writes):
//
//   - heap tuples with transaction visibility headers (xmin/xmax) and a
//     visibility check per row read (MVCC bookkeeping),
//   - a WAL record encoded per modification (buffered in memory,
//     recycled — matching the paper's tuned, non-durable configuration),
//   - composite-key B-tree index maintenance per insert,
//   - full row copies across the statement boundary.
//
// Those per-row constants — not disk — are what put the paper's
// PostgreSQL nearly an order of magnitude behind the caches, and the
// simulator preserves that cost structure.
package sqlsim

import (
	"encoding/binary"
	"fmt"
	"strings"
	"sync"

	"pequod/internal/rbtree"
)

// Row is a tuple of column values (ints as decimal strings).
type Row []string

// Column describes one column.
type Column struct {
	Name string
}

// Schema declares a table: columns and the primary-key column indexes.
type Schema struct {
	Name string
	Cols []Column
	Key  []int
}

// tuple is a heap tuple with MVCC visibility headers.
type tuple struct {
	xmin, xmax uint64
	vals       Row
}

// Table is one relation with its primary B-tree index.
type Table struct {
	schema Schema
	index  rbtree.Tree[*tuple]
}

// Trigger runs after an insert into its table, inside the same
// transaction (the paper's trigger-maintained timeline).
type Trigger func(db *DB, row Row)

// DB is the database.
type DB struct {
	mu       sync.Mutex
	tables   map[string]*Table
	triggers map[string][]Trigger
	xid      uint64
	wal      []byte

	// Stats for the evaluation write-up.
	Inserts, Deletes, Selects, TriggerRuns, WALBytes int64
}

// New returns an empty database.
func New() *DB {
	return &DB{
		tables:   make(map[string]*Table),
		triggers: make(map[string][]Trigger),
	}
}

// CreateTable registers a relation.
func (db *DB) CreateTable(s Schema) {
	db.mu.Lock()
	defer db.mu.Unlock()
	db.tables[s.Name] = &Table{schema: s}
}

// OnInsert installs an insert trigger.
func (db *DB) OnInsert(table string, tr Trigger) {
	db.mu.Lock()
	defer db.mu.Unlock()
	db.triggers[table] = append(db.triggers[table], tr)
}

// EncodeKey joins primary-key components into an index key.
func EncodeKey(parts ...string) string {
	return strings.Join(parts, "|")
}

// keyOf extracts a row's index key.
func (t *Table) keyOf(row Row) string {
	parts := make([]string, len(t.schema.Key))
	for i, ci := range t.schema.Key {
		parts[i] = row[ci]
	}
	return EncodeKey(parts...)
}

// walRecord appends an encoded modification record, recycling the buffer
// at 4 MiB to model a ring of WAL segments.
func (db *DB) walRecord(op byte, table string, row Row) {
	if len(db.wal) > 4<<20 {
		db.wal = db.wal[:0]
	}
	db.wal = append(db.wal, op)
	db.wal = binary.AppendUvarint(db.wal, db.xid)
	db.wal = binary.AppendUvarint(db.wal, uint64(len(table)))
	db.wal = append(db.wal, table...)
	for _, v := range row {
		db.wal = binary.AppendUvarint(db.wal, uint64(len(v)))
		db.wal = append(db.wal, v...)
	}
	db.WALBytes = int64(len(db.wal))
}

// Insert adds (or replaces) a row and fires insert triggers in the same
// transaction. Public entry point; takes the database lock.
func (db *DB) Insert(table string, row Row) error {
	db.mu.Lock()
	defer db.mu.Unlock()
	return db.insertLocked(table, row, true)
}

// insertLocked is shared by statements and triggers.
func (db *DB) insertLocked(table string, row Row, stmt bool) error {
	t := db.tables[table]
	if t == nil {
		return fmt.Errorf("sqlsim: no table %q", table)
	}
	if len(row) != len(t.schema.Cols) {
		return fmt.Errorf("sqlsim: %s wants %d columns", table, len(t.schema.Cols))
	}
	if stmt {
		db.xid++ // one transaction per statement (autocommit)
	}
	db.Inserts++
	// Heap tuple with copied values.
	vals := make(Row, len(row))
	copy(vals, row)
	tp := &tuple{xmin: db.xid, vals: vals}
	key := t.keyOf(vals)
	n, existed := t.index.Insert(key, tp)
	if existed {
		n.Val.xmax = db.xid // dead version; replaced in place
		n.Val = tp
	}
	db.walRecord('I', table, vals)
	for _, tr := range db.triggers[table] {
		db.TriggerRuns++
		tr(db, vals)
	}
	return nil
}

// InsertFromTrigger inserts without re-locking (for use inside triggers).
func (db *DB) InsertFromTrigger(table string, row Row) error {
	return db.insertLocked(table, row, false)
}

// Delete removes a row by primary key.
func (db *DB) Delete(table string, keyParts ...string) bool {
	db.mu.Lock()
	defer db.mu.Unlock()
	t := db.tables[table]
	if t == nil {
		return false
	}
	db.xid++
	db.Deletes++
	n := t.index.Find(EncodeKey(keyParts...))
	if n == nil {
		return false
	}
	n.Val.xmax = db.xid
	t.index.Delete(n)
	db.walRecord('D', table, n.Val.vals)
	return true
}

// SelectRange returns visible rows whose index key lies in [lo, hi)
// (hi == "" unbounded), in key order, copied out of the heap.
func (db *DB) SelectRange(table, lo, hi string) ([]Row, error) {
	db.mu.Lock()
	defer db.mu.Unlock()
	return db.selectRangeLocked(table, lo, hi)
}

func (db *DB) selectRangeLocked(table, lo, hi string) ([]Row, error) {
	t := db.tables[table]
	if t == nil {
		return nil, fmt.Errorf("sqlsim: no table %q", table)
	}
	db.Selects++
	snapshot := db.xid
	var out []Row
	t.index.Ascend(lo, hi, func(n *rbtree.Node[*tuple]) bool {
		tp := n.Val
		// Visibility: committed before our snapshot and not deleted.
		if tp.xmin <= snapshot && (tp.xmax == 0 || tp.xmax > snapshot) {
			row := make(Row, len(tp.vals))
			copy(row, tp.vals)
			out = append(out, row)
		}
		return true
	})
	return out, nil
}

// SelectPrefix returns visible rows whose key starts with the given
// components (an equality scan on a key prefix).
func (db *DB) SelectPrefix(table string, parts ...string) ([]Row, error) {
	lo := EncodeKey(parts...) + "|"
	hi := prefixEnd(lo)
	rows, err := db.SelectRange(table, lo, hi)
	if err != nil {
		return nil, err
	}
	// A full-key match (no further components) also qualifies.
	if exact, err2 := db.SelectRange(table, EncodeKey(parts...), EncodeKey(parts...)+"\x00"); err2 == nil {
		rows = append(exact, rows...)
	}
	return rows, nil
}

func prefixEnd(p string) string {
	b := []byte(p)
	for i := len(b) - 1; i >= 0; i-- {
		if b[i] != 0xff {
			b[i]++
			return string(b[:i+1])
		}
	}
	return ""
}

// Count returns the number of visible rows in the key range.
func (db *DB) Count(table, lo, hi string) (int, error) {
	rows, err := db.SelectRange(table, lo, hi)
	return len(rows), err
}
