package sqlsim

import (
	"fmt"
	"sort"
	"strings"
)

// This file is the SQL front-end: a hand-written lexer, recursive-descent
// parser, and range planner for the statement subset the Twip workload
// issues. Real PostgreSQL parses, analyzes, and plans every statement it
// executes (prepared statements amortize but never eliminate this); the
// per-statement front-end work here is a large part of why an in-memory
// relational database trails a key-value cache in Figure 7, so the
// simulator performs it honestly rather than calling table methods
// directly.
//
// Supported grammar:
//
//	INSERT INTO table VALUES ('v', 'v', ...)
//	DELETE FROM table WHERE col = 'v' [AND col = 'v' ...]
//	SELECT * FROM table [WHERE col OP 'v' [AND ...]] [ORDER BY col [, col]]
//
// with OP ∈ {=, <, <=, >, >=}. String literals quote ' as ''.

// token kinds
type tokKind int

const (
	tokEOF tokKind = iota
	tokWord
	tokString
	tokPunct
)

type token struct {
	kind tokKind
	s    string
}

// lex tokenizes a statement.
func lex(src string) ([]token, error) {
	var toks []token
	i := 0
	for i < len(src) {
		c := src[i]
		switch {
		case c == ' ' || c == '\t' || c == '\n' || c == '\r':
			i++
		case c == '\'':
			var sb strings.Builder
			i++
			for {
				if i >= len(src) {
					return nil, fmt.Errorf("sql: unterminated string")
				}
				if src[i] == '\'' {
					if i+1 < len(src) && src[i+1] == '\'' {
						sb.WriteByte('\'')
						i += 2
						continue
					}
					i++
					break
				}
				sb.WriteByte(src[i])
				i++
			}
			toks = append(toks, token{tokString, sb.String()})
		case c == '(' || c == ')' || c == ',' || c == '*' || c == ';':
			toks = append(toks, token{tokPunct, string(c)})
			i++
		case c == '=':
			toks = append(toks, token{tokPunct, "="})
			i++
		case c == '<' || c == '>':
			op := string(c)
			i++
			if i < len(src) && src[i] == '=' {
				op += "="
				i++
			}
			toks = append(toks, token{tokPunct, op})
		default:
			j := i
			for j < len(src) {
				c := src[j]
				if c == ' ' || c == '\t' || c == '\n' || c == '\r' ||
					c == '(' || c == ')' || c == ',' || c == '*' || c == ';' ||
					c == '=' || c == '<' || c == '>' || c == '\'' {
					break
				}
				j++
			}
			if j == i {
				return nil, fmt.Errorf("sql: unexpected byte %q", c)
			}
			toks = append(toks, token{tokWord, src[i:j]})
			i = j
		}
	}
	return append(toks, token{tokEOF, ""}), nil
}

// Cond is one WHERE conjunct.
type Cond struct {
	Col string
	Op  string // = < <= > >=
	Val string
}

// Stmt is a parsed statement.
type Stmt struct {
	Kind    string // INSERT, DELETE, SELECT
	Table   string
	Values  []string // INSERT
	Where   []Cond
	OrderBy []string
}

type parser struct {
	toks []token
	pos  int
}

func (p *parser) peek() token { return p.toks[p.pos] }

func (p *parser) next() token {
	t := p.toks[p.pos]
	if t.kind != tokEOF {
		p.pos++
	}
	return t
}

func (p *parser) expectWord(kw string) error {
	t := p.next()
	if t.kind != tokWord || !strings.EqualFold(t.s, kw) {
		return fmt.Errorf("sql: expected %s, got %q", kw, t.s)
	}
	return nil
}

func (p *parser) expectPunct(s string) error {
	t := p.next()
	if t.kind != tokPunct || t.s != s {
		return fmt.Errorf("sql: expected %q, got %q", s, t.s)
	}
	return nil
}

// ParseSQL parses one statement.
func ParseSQL(src string) (*Stmt, error) {
	toks, err := lex(src)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks}
	t := p.next()
	if t.kind != tokWord {
		return nil, fmt.Errorf("sql: expected statement, got %q", t.s)
	}
	var st *Stmt
	switch strings.ToUpper(t.s) {
	case "INSERT":
		st, err = p.parseInsert()
	case "DELETE":
		st, err = p.parseDelete()
	case "SELECT":
		st, err = p.parseSelect()
	default:
		return nil, fmt.Errorf("sql: unsupported statement %q", t.s)
	}
	if err != nil {
		return nil, err
	}
	if p.peek().kind == tokPunct && p.peek().s == ";" {
		p.next()
	}
	if p.peek().kind != tokEOF {
		return nil, fmt.Errorf("sql: trailing tokens at %q", p.peek().s)
	}
	return st, nil
}

func (p *parser) parseInsert() (*Stmt, error) {
	if err := p.expectWord("INTO"); err != nil {
		return nil, err
	}
	tbl := p.next()
	if tbl.kind != tokWord {
		return nil, fmt.Errorf("sql: expected table name")
	}
	if err := p.expectWord("VALUES"); err != nil {
		return nil, err
	}
	if err := p.expectPunct("("); err != nil {
		return nil, err
	}
	st := &Stmt{Kind: "INSERT", Table: tbl.s}
	for {
		v := p.next()
		if v.kind != tokString {
			return nil, fmt.Errorf("sql: expected string literal, got %q", v.s)
		}
		st.Values = append(st.Values, v.s)
		t := p.next()
		if t.kind == tokPunct && t.s == "," {
			continue
		}
		if t.kind == tokPunct && t.s == ")" {
			return st, nil
		}
		return nil, fmt.Errorf("sql: expected , or ) in VALUES")
	}
}

func (p *parser) parseWhere() ([]Cond, error) {
	var conds []Cond
	for {
		col := p.next()
		if col.kind != tokWord {
			return nil, fmt.Errorf("sql: expected column name, got %q", col.s)
		}
		op := p.next()
		if op.kind != tokPunct || (op.s != "=" && op.s != "<" && op.s != "<=" && op.s != ">" && op.s != ">=") {
			return nil, fmt.Errorf("sql: expected comparison operator, got %q", op.s)
		}
		val := p.next()
		if val.kind != tokString {
			return nil, fmt.Errorf("sql: expected string literal, got %q", val.s)
		}
		conds = append(conds, Cond{Col: col.s, Op: op.s, Val: val.s})
		if p.peek().kind == tokWord && strings.EqualFold(p.peek().s, "AND") {
			p.next()
			continue
		}
		return conds, nil
	}
}

func (p *parser) parseDelete() (*Stmt, error) {
	if err := p.expectWord("FROM"); err != nil {
		return nil, err
	}
	tbl := p.next()
	if tbl.kind != tokWord {
		return nil, fmt.Errorf("sql: expected table name")
	}
	st := &Stmt{Kind: "DELETE", Table: tbl.s}
	if err := p.expectWord("WHERE"); err != nil {
		return nil, err
	}
	var err error
	st.Where, err = p.parseWhere()
	return st, err
}

func (p *parser) parseSelect() (*Stmt, error) {
	if err := p.expectPunct("*"); err != nil {
		return nil, err
	}
	if err := p.expectWord("FROM"); err != nil {
		return nil, err
	}
	tbl := p.next()
	if tbl.kind != tokWord {
		return nil, fmt.Errorf("sql: expected table name")
	}
	st := &Stmt{Kind: "SELECT", Table: tbl.s}
	if p.peek().kind == tokWord && strings.EqualFold(p.peek().s, "WHERE") {
		p.next()
		var err error
		st.Where, err = p.parseWhere()
		if err != nil {
			return nil, err
		}
	}
	if p.peek().kind == tokWord && strings.EqualFold(p.peek().s, "ORDER") {
		p.next()
		if err := p.expectWord("BY"); err != nil {
			return nil, err
		}
		for {
			col := p.next()
			if col.kind != tokWord {
				return nil, fmt.Errorf("sql: expected ORDER BY column")
			}
			st.OrderBy = append(st.OrderBy, col.s)
			if p.peek().kind == tokPunct && p.peek().s == "," {
				p.next()
				continue
			}
			break
		}
	}
	return st, nil
}

// plan is a compiled access path: an index range plus residual filters.
type plan struct {
	table   *Table
	lo, hi  string
	filters []Cond
	colIdx  map[string]int
	sortBy  []int // column indexes to sort by (nil = index order)
}

// planSelect builds the access path: equality conditions on a primary-key
// prefix become the index prefix; one range condition on the next key
// column tightens the bounds; everything else filters row-by-row — the
// shape of a textbook B-tree plan.
func (db *DB) planSelect(st *Stmt) (*plan, error) {
	t := db.tables[st.Table]
	if t == nil {
		return nil, fmt.Errorf("sql: no table %q", st.Table)
	}
	pl := &plan{table: t, colIdx: map[string]int{}}
	for i, c := range t.schema.Cols {
		pl.colIdx[c.Name] = i
	}
	for _, c := range st.Where {
		if _, ok := pl.colIdx[c.Col]; !ok {
			return nil, fmt.Errorf("sql: no column %q in %s", c.Col, st.Table)
		}
	}

	// Consume equality conds along the PK prefix.
	remaining := append([]Cond(nil), st.Where...)
	var prefix []string
	for _, keyCol := range t.schema.Key {
		name := t.schema.Cols[keyCol].Name
		found := -1
		for i, c := range remaining {
			if c.Col == name && c.Op == "=" {
				found = i
				break
			}
		}
		if found < 0 {
			// Range conditions on this key column tighten the scan
			// bounds; they also stay in the residual filter set because
			// composite keys continue past this column, which makes the
			// raw bounds slightly loose at the edges.
			base := EncodeKey(prefix...)
			if len(prefix) > 0 {
				base += "|"
			}
			lo := base
			hi := ""
			if base != "" {
				hi = prefixEnd(base)
			}
			for _, c := range remaining {
				if c.Col != name || c.Op == "=" {
					continue
				}
				switch c.Op {
				case ">=":
					if v := base + c.Val; v > lo {
						lo = v
					}
				case ">":
					// Exclude the value and all its key continuations.
					if v := prefixEnd(base + c.Val); v > lo {
						lo = v
					}
				case "<":
					if v := base + c.Val; hi == "" || v < hi {
						hi = v
					}
				case "<=":
					// Include the value's key continuations.
					if v := prefixEnd(base + c.Val); hi == "" || v < hi {
						hi = v
					}
				}
			}
			pl.lo, pl.hi = lo, hi
			pl.filters = remaining
			break
		}
		prefix = append(prefix, remaining[found].Val)
		remaining = append(remaining[:found], remaining[found+1:]...)
	}
	if pl.lo == "" && pl.hi == "" && len(prefix) > 0 {
		if len(prefix) == len(t.schema.Key) {
			k := EncodeKey(prefix...)
			pl.lo, pl.hi = k, k+"\x00"
		} else {
			base := EncodeKey(prefix...) + "|"
			pl.lo, pl.hi = base, prefixEnd(base)
		}
		pl.filters = remaining
	} else if len(prefix) == 0 && pl.lo == "" && pl.hi == "" {
		pl.filters = remaining // full scan
	}

	// ORDER BY matching the key prefix is free; otherwise sort.
	if len(st.OrderBy) > 0 {
		match := true
		for i, col := range st.OrderBy {
			// Key columns after the bound equality prefix provide order.
			want := -1
			if len(prefix)+i < len(t.schema.Key) {
				want = t.schema.Key[len(prefix)+i]
			}
			if want < 0 || t.schema.Cols[want].Name != col {
				match = false
				break
			}
		}
		if !match {
			for _, col := range st.OrderBy {
				ci, ok := pl.colIdx[col]
				if !ok {
					return nil, fmt.Errorf("sql: no ORDER BY column %q", col)
				}
				pl.sortBy = append(pl.sortBy, ci)
			}
		}
	}
	return pl, nil
}

func (pl *plan) match(row Row) bool {
	for _, c := range pl.filters {
		v := row[pl.colIdx[c.Col]]
		switch c.Op {
		case "=":
			if v != c.Val {
				return false
			}
		case "<":
			if !(v < c.Val) {
				return false
			}
		case "<=":
			if !(v <= c.Val) {
				return false
			}
		case ">":
			if !(v > c.Val) {
				return false
			}
		case ">=":
			if !(v >= c.Val) {
				return false
			}
		}
	}
	return true
}

// Exec parses and runs a modification statement.
func (db *DB) Exec(src string) error {
	st, err := ParseSQL(src)
	if err != nil {
		return err
	}
	switch st.Kind {
	case "INSERT":
		return db.Insert(st.Table, Row(st.Values))
	case "DELETE":
		// The schema map is fixed after setup, so reading it without the
		// lock is safe; Delete takes the lock itself.
		t := db.tables[st.Table]
		if t == nil {
			return fmt.Errorf("sql: no table %q", st.Table)
		}
		// Delete by full primary key only (the workload's shape).
		vals := make(map[string]string, len(st.Where))
		for _, c := range st.Where {
			if c.Op != "=" {
				return fmt.Errorf("sql: DELETE supports equality predicates only")
			}
			vals[c.Col] = c.Val
		}
		parts := make([]string, len(t.schema.Key))
		for i, ci := range t.schema.Key {
			v, ok := vals[t.schema.Cols[ci].Name]
			if !ok {
				return fmt.Errorf("sql: DELETE needs the full primary key")
			}
			parts[i] = v
		}
		db.Delete(st.Table, parts...)
		return nil
	case "SELECT":
		return fmt.Errorf("sql: use Query for SELECT")
	}
	return fmt.Errorf("sql: unsupported statement")
}

// Query parses, plans, and runs a SELECT.
func (db *DB) Query(src string) ([]Row, error) {
	st, err := ParseSQL(src)
	if err != nil {
		return nil, err
	}
	if st.Kind != "SELECT" {
		return nil, fmt.Errorf("sql: Query wants SELECT")
	}
	db.mu.Lock()
	pl, err := db.planSelect(st)
	if err != nil {
		db.mu.Unlock()
		return nil, err
	}
	rows, err := db.selectRangeLocked(st.Table, pl.lo, pl.hi)
	db.mu.Unlock()
	if err != nil {
		return nil, err
	}
	if len(pl.filters) > 0 {
		out := rows[:0]
		for _, r := range rows {
			if pl.match(r) {
				out = append(out, r)
			}
		}
		rows = out
	}
	if len(pl.sortBy) > 0 {
		sort.Slice(rows, func(i, j int) bool {
			for _, c := range pl.sortBy {
				if rows[i][c] != rows[j][c] {
					return rows[i][c] < rows[j][c]
				}
			}
			return false
		})
	}
	return rows, nil
}

// Quote renders a SQL string literal.
func Quote(s string) string {
	return "'" + strings.ReplaceAll(s, "'", "''") + "'"
}
