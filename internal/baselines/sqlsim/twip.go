package sqlsim

import (
	"fmt"

	"pequod/internal/rpc"
)

// SetupTwip installs the paper's Twip schema (§2.1) plus the
// trigger-maintained timeline table that stands in for materialized
// views: "Although our test version lacks automatically-updated
// materialized views, we use triggers to get a similar effect" (§5.2).
//
// Tables:
//
//	posts(poster, time, tweet)            PK (poster, time)
//	subs(user, poster)                    PK (user, poster)
//	revsubs(poster, user)                 PK (poster, user) — fan-out index
//	timelines(user, time, poster, tweet)  PK (user, time, poster)
//
// Triggers:
//
//	AFTER INSERT ON posts: copy the post into every subscriber's timeline.
//	AFTER INSERT ON subs: maintain revsubs and backfill the new timeline
//	  from the poster's history.
func SetupTwip(db *DB) {
	db.CreateTable(Schema{Name: "posts", Cols: cols("poster", "time", "tweet"), Key: []int{0, 1}})
	db.CreateTable(Schema{Name: "subs", Cols: cols("user", "poster"), Key: []int{0, 1}})
	db.CreateTable(Schema{Name: "revsubs", Cols: cols("poster", "user"), Key: []int{0, 1}})
	db.CreateTable(Schema{Name: "timelines", Cols: cols("user", "time", "poster", "tweet"), Key: []int{0, 1, 2}})

	db.OnInsert("posts", func(db *DB, row Row) {
		poster, time, tweet := row[0], row[1], row[2]
		lo := EncodeKey(poster) + "|"
		subs, _ := db.selectRangeLocked("revsubs", lo, prefixEnd(lo))
		for _, s := range subs {
			db.InsertFromTrigger("timelines", Row{s[1], time, poster, tweet})
		}
	})
	db.OnInsert("subs", func(db *DB, row Row) {
		user, poster := row[0], row[1]
		db.InsertFromTrigger("revsubs", Row{poster, user})
		lo := EncodeKey(poster) + "|"
		posts, _ := db.selectRangeLocked("posts", lo, prefixEnd(lo))
		for _, p := range posts {
			db.InsertFromTrigger("timelines", Row{user, p[1], poster, p[2]})
		}
	})
}

// TwipHandler exposes the Twip SQL operations over the baseline command
// protocol, playing the role of the application's SQL statements.
type TwipHandler struct {
	DB *DB
}

// NewTwip builds a database with the Twip profile and its handler.
func NewTwip() *TwipHandler {
	db := New()
	SetupTwip(db)
	return &TwipHandler{DB: db}
}

// Command implements baselines.Handler. The single verb is SQL: clients
// send statement text exactly as a database client would, and every
// statement pays the full parse/plan/execute path.
//
//	SQL <statement>
func (h *TwipHandler) Command(args []string) (*rpc.Message, error) {
	if args[0] != "SQL" || len(args) != 2 {
		return nil, fmt.Errorf("sqlsim: want SQL <statement>")
	}
	src := args[1]
	st, err := ParseSQL(src)
	if err != nil {
		return nil, err
	}
	r := &rpc.Message{}
	if st.Kind == "SELECT" {
		rows, err := h.DB.Query(src) // statement-level API, as libpq presents
		if err != nil {
			return nil, err
		}
		for _, row := range rows {
			// Key/value rendering for the Twip timeline row shape
			// (user, time, poster, tweet); generic rows join all columns.
			if len(row) == 4 {
				r.KVs = append(r.KVs, rpc.KV{Key: EncodeKey(row[1], row[2]), Value: row[3]})
			} else {
				r.KVs = append(r.KVs, rpc.KV{Key: EncodeKey(row...)})
			}
		}
		return r, nil
	}
	return r, h.DB.Exec(src)
}

// cols builds a column list from names.
func cols(names ...string) []Column {
	out := make([]Column, len(names))
	for i, n := range names {
		out[i] = Column{Name: n}
	}
	return out
}
