package sqlsim

import "testing"

// FuzzParseSQL hardens the SQL front-end: arbitrary statement text must
// parse or error, never panic, and quoting must round-trip.
func FuzzParseSQL(f *testing.F) {
	f.Add("INSERT INTO posts VALUES ('u9', '0000000100', 'hello')")
	f.Add("SELECT * FROM timelines WHERE user = 'ann' AND time >= '100' ORDER BY time")
	f.Add("DELETE FROM subs WHERE user = 'ann' AND poster = 'bob'")
	f.Add("INSERT INTO t VALUES ('it''s')")
	f.Add("select * from t")
	f.Add("'")
	f.Fuzz(func(t *testing.T, src string) {
		st, err := ParseSQL(src)
		if err != nil {
			return
		}
		if st.Kind != "INSERT" && st.Kind != "SELECT" && st.Kind != "DELETE" {
			t.Fatalf("parsed unexpected kind %q", st.Kind)
		}
	})
}

// FuzzQuoteRoundTrip: any string survives Quote + parse.
func FuzzQuoteRoundTrip(f *testing.F) {
	f.Add("plain")
	f.Add("it's")
	f.Add("''")
	f.Add("a|b|c\x00\xff")
	f.Fuzz(func(t *testing.T, s string) {
		st, err := ParseSQL("INSERT INTO t VALUES (" + Quote(s) + ")")
		if err != nil {
			t.Fatalf("quoted insert failed for %q: %v", s, err)
		}
		if len(st.Values) != 1 || st.Values[0] != s {
			t.Fatalf("round trip drift: %q -> %q", s, st.Values[0])
		}
	})
}
