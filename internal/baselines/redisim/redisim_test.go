package redisim

import (
	"fmt"
	"math/rand"
	"testing"
)

func TestStringOps(t *testing.T) {
	s := New()
	if m, _ := s.Command([]string{"GET", "k"}); m.Found {
		t.Fatal("empty get found")
	}
	if _, err := s.Command([]string{"SET", "k", "v"}); err != nil {
		t.Fatal(err)
	}
	m, _ := s.Command([]string{"GET", "k"})
	if !m.Found || m.Value != "v" {
		t.Fatal("get after set")
	}
	s.Command([]string{"APPEND", "k", "2"})
	m, _ = s.Command([]string{"GET", "k"})
	if m.Value != "v2" {
		t.Fatal("append")
	}
	m, _ = s.Command([]string{"DEL", "k"})
	if !m.Found {
		t.Fatal("del")
	}
	if m, _ := s.Command([]string{"GET", "k"}); m.Found {
		t.Fatal("get after del")
	}
}

func TestSetOps(t *testing.T) {
	s := New()
	m, _ := s.Command([]string{"SADD", "fl", "u1"})
	if m.Count != 1 {
		t.Fatal("first sadd should add")
	}
	m, _ = s.Command([]string{"SADD", "fl", "u1"})
	if m.Count != 0 {
		t.Fatal("duplicate sadd should not add")
	}
	s.Command([]string{"SADD", "fl", "u2"})
	m, _ = s.Command([]string{"SMEMBERS", "fl"})
	if len(m.KVs) != 2 {
		t.Fatalf("smembers = %v", m.KVs)
	}
	m, _ = s.Command([]string{"SCARD", "fl"})
	if m.Count != 2 {
		t.Fatal("scard")
	}
}

func TestZSetOps(t *testing.T) {
	s := New()
	s.Command([]string{"ZADD", "tl", "30", "c"})
	s.Command([]string{"ZADD", "tl", "10", "a"})
	s.Command([]string{"ZADD", "tl", "20", "b"})
	m, _ := s.Command([]string{"ZRANGEBYSCORE", "tl", "-inf", "+inf"})
	if len(m.KVs) != 3 || m.KVs[0].Value != "a" || m.KVs[2].Value != "c" {
		t.Fatalf("zrange = %v", m.KVs)
	}
	m, _ = s.Command([]string{"ZRANGEBYSCORE", "tl", "15", "25"})
	if len(m.KVs) != 1 || m.KVs[0].Value != "b" {
		t.Fatalf("bounded zrange = %v", m.KVs)
	}
	// Re-adding a member with a new score moves it.
	s.Command([]string{"ZADD", "tl", "5", "c"})
	m, _ = s.Command([]string{"ZRANGEBYSCORE", "tl", "-inf", "+inf"})
	if len(m.KVs) != 3 || m.KVs[0].Value != "c" {
		t.Fatalf("rescore = %v", m.KVs)
	}
	// Same-score re-add is a no-op.
	s.Command([]string{"ZADD", "tl", "5", "c"})
	m, _ = s.Command([]string{"ZCARD", "tl"})
	if m.Count != 3 {
		t.Fatal("zcard")
	}
}

func TestZSetAgainstModel(t *testing.T) {
	s := New()
	rng := rand.New(rand.NewSource(2))
	model := map[string]int64{}
	for i := 0; i < 5000; i++ {
		member := fmt.Sprintf("m%03d", rng.Intn(300))
		score := int64(rng.Intn(1000))
		s.Command([]string{"ZADD", "z", fmt.Sprint(score), member})
		model[member] = score
	}
	m, _ := s.Command([]string{"ZRANGEBYSCORE", "z", "-inf", "+inf"})
	if len(m.KVs) != len(model) {
		t.Fatalf("zset has %d members, model %d", len(m.KVs), len(model))
	}
	prev := int64(-1)
	for _, kv := range m.KVs {
		if fmt.Sprint(model[kv.Value]) != kv.Key {
			t.Fatalf("member %s has score %s, want %d", kv.Value, kv.Key, model[kv.Value])
		}
		var sc int64
		fmt.Sscan(kv.Key, &sc)
		if sc < prev {
			t.Fatal("zset out of score order")
		}
		prev = sc
	}
}

func TestErrors(t *testing.T) {
	s := New()
	for _, args := range [][]string{
		{"NOPE"}, {"GET"}, {"SET", "k"}, {"ZADD", "z", "x", "m"},
		{"ZRANGEBYSCORE", "z", "bad", "10"}, {"SADD", "s"}, {"APPEND", "k"},
		{"DEL"}, {"SMEMBERS"}, {"SCARD"}, {"ZCARD"},
	} {
		if _, err := s.Command(args); err == nil {
			t.Errorf("command %v should fail", args)
		}
	}
}

func TestLen(t *testing.T) {
	s := New()
	s.Command([]string{"SET", "a", "1"})
	s.Command([]string{"SADD", "b", "x"})
	s.Command([]string{"ZADD", "c", "1", "m"})
	if s.Len() != 3 {
		t.Fatalf("Len = %d", s.Len())
	}
}
