// Package redisim is the Redis 2.8.5 stand-in of the Figure 7 comparison
// (§5.2): an unordered hash-table store with O(1) lookups and structured
// values — strings, sets, and sorted sets. As in the paper, "Redis stores
// timelines as sorted sets of tweets" and clients actively manage user
// timelines (fan-out on write); the engine itself has no server-side
// computation.
//
// Command set (args[0] verb, case-sensitive):
//
//	GET k / SET k v / DEL k / APPEND k v
//	SADD k member / SMEMBERS k / SCARD k
//	ZADD k score member / ZCARD k
//	ZRANGEBYSCORE k min max   (inclusive numeric bounds; +inf allowed)
package redisim

import (
	"fmt"
	"sort"
	"strconv"
	"sync"

	"pequod/internal/rpc"
)

// zentry is one sorted-set member.
type zentry struct {
	score  int64
	member string
}

// zset is a score-sorted set. Redis uses a skiplist + hash; a sorted
// slice with binary-search insertion preserves the operational costs that
// matter at Twip scale (O(log n) locate, O(n) insert-in-middle is rare
// because timeline inserts are mostly appends).
type zset struct {
	entries []zentry
	members map[string]int64
}

func (z *zset) add(score int64, member string) {
	if old, ok := z.members[member]; ok {
		if old == score {
			return
		}
		// Remove the stale entry.
		i := sort.Search(len(z.entries), func(i int) bool {
			e := z.entries[i]
			return e.score > old || (e.score == old && e.member >= member)
		})
		if i < len(z.entries) && z.entries[i].member == member {
			z.entries = append(z.entries[:i], z.entries[i+1:]...)
		}
	}
	z.members[member] = score
	i := sort.Search(len(z.entries), func(i int) bool {
		e := z.entries[i]
		return e.score > score || (e.score == score && e.member >= member)
	})
	z.entries = append(z.entries, zentry{})
	copy(z.entries[i+1:], z.entries[i:])
	z.entries[i] = zentry{score, member}
}

func (z *zset) rangeByScore(min, max int64) []zentry {
	lo := sort.Search(len(z.entries), func(i int) bool { return z.entries[i].score >= min })
	hi := sort.Search(len(z.entries), func(i int) bool { return z.entries[i].score > max })
	return z.entries[lo:hi]
}

// Store is the hash-table engine.
type Store struct {
	mu      sync.Mutex
	strings map[string]string
	sets    map[string]map[string]bool
	zsets   map[string]*zset
}

// New returns an empty store.
func New() *Store {
	return &Store{
		strings: make(map[string]string),
		sets:    make(map[string]map[string]bool),
		zsets:   make(map[string]*zset),
	}
}

func parseScore(s string) (int64, error) {
	if s == "+inf" {
		return 1<<63 - 1, nil
	}
	if s == "-inf" {
		return -1 << 63, nil
	}
	return strconv.ParseInt(s, 10, 64)
}

// Command implements baselines.Handler.
func (s *Store) Command(args []string) (*rpc.Message, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	r := &rpc.Message{}
	switch verb := args[0]; verb {
	case "SET":
		if len(args) != 3 {
			return nil, fmt.Errorf("SET wants 2 args")
		}
		s.strings[args[1]] = args[2]
	case "GET":
		if len(args) != 2 {
			return nil, fmt.Errorf("GET wants 1 arg")
		}
		v, ok := s.strings[args[1]]
		r.Value, r.Found = v, ok
	case "APPEND":
		if len(args) != 3 {
			return nil, fmt.Errorf("APPEND wants 2 args")
		}
		s.strings[args[1]] += args[2]
		r.Count = int64(len(s.strings[args[1]]))
	case "DEL":
		if len(args) != 2 {
			return nil, fmt.Errorf("DEL wants 1 arg")
		}
		_, had := s.strings[args[1]]
		delete(s.strings, args[1])
		delete(s.sets, args[1])
		delete(s.zsets, args[1])
		r.Found = had
	case "SADD":
		if len(args) != 3 {
			return nil, fmt.Errorf("SADD wants 2 args")
		}
		set := s.sets[args[1]]
		if set == nil {
			set = make(map[string]bool)
			s.sets[args[1]] = set
		}
		if !set[args[2]] {
			set[args[2]] = true
			r.Count = 1
		}
	case "SMEMBERS":
		if len(args) != 2 {
			return nil, fmt.Errorf("SMEMBERS wants 1 arg")
		}
		for m := range s.sets[args[1]] {
			r.KVs = append(r.KVs, rpc.KV{Key: m})
		}
	case "SCARD":
		if len(args) != 2 {
			return nil, fmt.Errorf("SCARD wants 1 arg")
		}
		r.Count = int64(len(s.sets[args[1]]))
	case "ZADD":
		if len(args) != 4 {
			return nil, fmt.Errorf("ZADD wants 3 args")
		}
		score, err := parseScore(args[2])
		if err != nil {
			return nil, err
		}
		z := s.zsets[args[1]]
		if z == nil {
			z = &zset{members: make(map[string]int64)}
			s.zsets[args[1]] = z
		}
		z.add(score, args[3])
	case "ZCARD":
		if len(args) != 2 {
			return nil, fmt.Errorf("ZCARD wants 1 arg")
		}
		if z := s.zsets[args[1]]; z != nil {
			r.Count = int64(len(z.entries))
		}
	case "ZRANGEBYSCORE":
		if len(args) != 4 {
			return nil, fmt.Errorf("ZRANGEBYSCORE wants 3 args")
		}
		min, err := parseScore(args[2])
		if err != nil {
			return nil, err
		}
		max, err := parseScore(args[3])
		if err != nil {
			return nil, err
		}
		if z := s.zsets[args[1]]; z != nil {
			for _, e := range z.rangeByScore(min, max) {
				r.KVs = append(r.KVs, rpc.KV{Key: strconv.FormatInt(e.score, 10), Value: e.member})
			}
		}
	default:
		return nil, fmt.Errorf("redisim: unknown command %q", verb)
	}
	return r, nil
}

// Len reports the total number of top-level keys (tests/stats).
func (s *Store) Len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.strings) + len(s.sets) + len(s.zsets)
}
