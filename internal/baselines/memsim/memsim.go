// Package memsim is the memcached 1.4.16 stand-in of the Figure 7
// comparison (§5.2): a flat hash table of strings with get/set/append.
// Timelines are "a string to which tweets are appended"; a timeline
// check rereads the whole string, and client code parses it — the model
// that makes memcached fall behind when "the Twip workload has more
// writes than memcached prefers".
//
// Commands: get k / set k v / append k v / delete k
package memsim

import (
	"fmt"
	"sync"

	"pequod/internal/rpc"
)

// Store is the hash-table engine.
type Store struct {
	mu   sync.Mutex
	data map[string]string
}

// New returns an empty store.
func New() *Store {
	return &Store{data: make(map[string]string)}
}

// Command implements baselines.Handler.
func (s *Store) Command(args []string) (*rpc.Message, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	r := &rpc.Message{}
	switch verb := args[0]; verb {
	case "set":
		if len(args) != 3 {
			return nil, fmt.Errorf("set wants 2 args")
		}
		s.data[args[1]] = args[2]
	case "get":
		if len(args) != 2 {
			return nil, fmt.Errorf("get wants 1 arg")
		}
		v, ok := s.data[args[1]]
		r.Value, r.Found = v, ok
	case "append":
		if len(args) != 3 {
			return nil, fmt.Errorf("append wants 2 args")
		}
		// memcached's append concatenates in place; for large timeline
		// strings this O(len) copy is the operation's true cost and is
		// retained deliberately.
		s.data[args[1]] = s.data[args[1]] + args[2]
	case "delete":
		if len(args) != 2 {
			return nil, fmt.Errorf("delete wants 1 arg")
		}
		_, had := s.data[args[1]]
		delete(s.data, args[1])
		r.Found = had
	default:
		return nil, fmt.Errorf("memsim: unknown command %q", verb)
	}
	return r, nil
}

// Len reports the number of keys.
func (s *Store) Len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.data)
}
