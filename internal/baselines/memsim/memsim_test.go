package memsim

import "testing"

func TestOps(t *testing.T) {
	s := New()
	if m, _ := s.Command([]string{"get", "k"}); m.Found {
		t.Fatal("empty get found")
	}
	s.Command([]string{"set", "k", "v"})
	m, _ := s.Command([]string{"get", "k"})
	if !m.Found || m.Value != "v" {
		t.Fatal("get after set")
	}
	// Appending to an absent key creates it (memcached would fail the
	// append; the Twip client sets an empty value first — modeling the
	// net effect keeps the workload driver simpler without changing
	// costs).
	s.Command([]string{"append", "tl", "a\n"})
	s.Command([]string{"append", "tl", "b\n"})
	m, _ = s.Command([]string{"get", "tl"})
	if m.Value != "a\nb\n" {
		t.Fatalf("append = %q", m.Value)
	}
	m, _ = s.Command([]string{"delete", "tl"})
	if !m.Found {
		t.Fatal("delete")
	}
	if s.Len() != 1 {
		t.Fatalf("Len = %d", s.Len())
	}
}

func TestErrors(t *testing.T) {
	s := New()
	for _, args := range [][]string{
		{"nope"}, {"get"}, {"set", "k"}, {"append", "k"}, {"delete"},
	} {
		if _, err := s.Command(args); err == nil {
			t.Errorf("command %v should fail", args)
		}
	}
}
