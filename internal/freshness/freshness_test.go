package freshness

import (
	"context"
	"testing"
	"time"
)

func TestBudgetRoundTrip(t *testing.T) {
	ctx := context.Background()
	if got := Budget(ctx); got != 0 {
		t.Fatalf("fresh context carries budget %v", got)
	}
	b := WithBudget(ctx, 25*time.Millisecond)
	if got := Budget(b); got != 25*time.Millisecond {
		t.Fatalf("Budget = %v, want 25ms", got)
	}
	// Narrowing back to fresh must win over the outer budget.
	if got := Budget(WithBudget(b, 0)); got != 0 {
		t.Fatalf("cleared budget = %v, want 0", got)
	}
	if got := Budget(WithBudget(b, -time.Second)); got != 0 {
		t.Fatalf("negative budget = %v, want 0", got)
	}
	// Clearing a context that never had a budget is a no-op, not a
	// wrap.
	if WithBudget(ctx, 0) != ctx {
		t.Fatal("clearing an unbudgeted context allocated a new one")
	}
	// Inner budgets shadow outer ones.
	if got := Budget(WithBudget(b, time.Second)); got != time.Second {
		t.Fatalf("nested budget = %v, want 1s", got)
	}
}
