// Package freshness carries a per-read staleness budget on a
// context.Context. It is a leaf package (standard library only) so the
// public pequod package, the wire client (which stamps the budget onto
// request frames exactly as it stamps deadlines), and the in-process
// read paths can all consult the same budget without import cycles.
//
// A budget of zero — the default for every context — means "fresh":
// today's read semantics, unchanged. A positive budget B permits the
// read to serve state whose lag is at most B, skipping the
// recomputation and load-wait work freshness would otherwise force; a
// read whose range has lagged past B falls back to the fresh path.
package freshness

import (
	"context"
	"time"
)

type ctxKey struct{}

// WithBudget returns a context carrying staleness budget d. A
// non-positive d clears any budget (reads become fresh again), so
// callers can narrow a budgeted context back to strict freshness.
func WithBudget(ctx context.Context, d time.Duration) context.Context {
	if d <= 0 {
		if _, ok := ctx.Value(ctxKey{}).(time.Duration); !ok {
			return ctx // nothing to clear; avoid an allocation
		}
		d = 0
	}
	return context.WithValue(ctx, ctxKey{}, d)
}

// Budget returns the staleness budget carried by ctx, or zero (fresh)
// when none was set.
func Budget(ctx context.Context) time.Duration {
	if d, ok := ctx.Value(ctxKey{}).(time.Duration); ok && d > 0 {
		return d
	}
	return 0
}
