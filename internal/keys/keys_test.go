package keys

import (
	"sort"
	"testing"
	"testing/quick"
)

func TestPrefixEnd(t *testing.T) {
	cases := []struct{ in, want string }{
		{"t|ann|", "t|ann}"},
		{"p|", "p}"},
		{"a", "b"},
		{"", ""},
		{"a\xff", "b"},
		{"\xff\xff", ""},
		{"t|ann", "t|ano"},
	}
	for _, c := range cases {
		if got := PrefixEnd(c.in); got != c.want {
			t.Errorf("PrefixEnd(%q) = %q, want %q", c.in, got, c.want)
		}
	}
}

func TestPrefixEndIsLeastUpperBound(t *testing.T) {
	// PrefixEnd(p) must be > every string with prefix p, and no string with
	// prefix p may be >= PrefixEnd(p).
	f := func(p string, suffix string) bool {
		end := PrefixEnd(p)
		if end == "" {
			return true // +inf is trivially an upper bound
		}
		k := p + suffix
		return k < end && end > p
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestRangeEnd(t *testing.T) {
	if got := RangeEnd("t", "ann"); got != "t|ann}" {
		t.Errorf("RangeEnd(t, ann) = %q, want t|ann}", got)
	}
}

func TestJoinSplit(t *testing.T) {
	k := Join("t", "ann", "100")
	if k != "t|ann|100" {
		t.Fatalf("Join = %q", k)
	}
	parts := Split(k)
	if len(parts) != 3 || parts[0] != "t" || parts[1] != "ann" || parts[2] != "100" {
		t.Fatalf("Split = %v", parts)
	}
}

func TestTable(t *testing.T) {
	if Table("p|bob|100") != "p" {
		t.Error("Table(p|bob|100)")
	}
	if Table("plain") != "plain" {
		t.Error("Table(plain)")
	}
}

func TestPrefix(t *testing.T) {
	cases := []struct {
		key  string
		n    int
		want string
	}{
		{"t|ann|100|bob", 1, "t|"},
		{"t|ann|100|bob", 2, "t|ann|"},
		{"t|ann|100|bob", 3, "t|ann|100|"},
		{"t|ann", 3, "t|ann"},
	}
	for _, c := range cases {
		if got := Prefix(c.key, c.n); got != c.want {
			t.Errorf("Prefix(%q, %d) = %q, want %q", c.key, c.n, got, c.want)
		}
	}
}

func TestRangeContains(t *testing.T) {
	r := Range{"t|ann|", "t|ann}"}
	for _, k := range []string{"t|ann|", "t|ann|100", "t|ann|zzz"} {
		if !r.Contains(k) {
			t.Errorf("%v should contain %q", r, k)
		}
	}
	for _, k := range []string{"t|anm|zzz", "t|ann}", "t|bob|1"} {
		if r.Contains(k) {
			t.Errorf("%v should not contain %q", r, k)
		}
	}
	unbounded := Range{"t|", ""}
	if !unbounded.Contains("zzzz") {
		t.Error("unbounded range should contain zzzz")
	}
}

func TestRangeOf(t *testing.T) {
	r := RangeOf("t", "ann")
	if r.Lo != "t|ann|" || r.Hi != "t|ann}" {
		t.Errorf("RangeOf = %v", r)
	}
}

func TestRangeOverlapsIntersect(t *testing.T) {
	a := Range{"b", "f"}
	b := Range{"d", "h"}
	if !a.Overlaps(b) || !b.Overlaps(a) {
		t.Error("expected overlap")
	}
	got := a.Intersect(b)
	if got.Lo != "d" || got.Hi != "f" {
		t.Errorf("Intersect = %v", got)
	}
	c := Range{"f", "g"}
	if a.Overlaps(c) {
		t.Error("[b,f) should not overlap [f,g)")
	}
	unb := Range{"a", ""}
	if !unb.Overlaps(c) {
		t.Error("unbounded should overlap")
	}
	if got := unb.Intersect(c); got != c {
		t.Errorf("unbounded intersect = %v", got)
	}
	if (Range{"x", "x"}).Overlaps(unb) {
		t.Error("empty range overlaps nothing")
	}
}

func TestRangeContainsRange(t *testing.T) {
	outer := Range{"b", "z"}
	if !outer.ContainsRange(Range{"c", "d"}) {
		t.Error("expected containment")
	}
	if outer.ContainsRange(Range{"a", "d"}) {
		t.Error("should not contain range starting before")
	}
	if outer.ContainsRange(Range{"c", ""}) {
		t.Error("bounded cannot contain unbounded")
	}
	if !(Range{"b", ""}).ContainsRange(Range{"c", ""}) {
		t.Error("unbounded contains unbounded suffix")
	}
	if !outer.ContainsRange(Range{"q", "q"}) {
		t.Error("everything contains the empty range")
	}
}

func TestOverlapsIsSymmetricAndConsistent(t *testing.T) {
	// Property: Overlaps(a,b) iff some generated point is in both.
	pts := []string{"", "a", "b", "c", "d", "e", "f", "zz"}
	bounds := []string{"", "a", "b", "c", "d", "e", "f"}
	for _, alo := range bounds {
		for _, ahi := range bounds {
			for _, blo := range bounds {
				for _, bhi := range bounds {
					a := Range{alo, ahi}
					b := Range{blo, bhi}
					if a.Overlaps(b) != b.Overlaps(a) {
						t.Fatalf("asymmetric overlap %v %v", a, b)
					}
					// brute force over sample points
					brute := false
					for _, p := range pts {
						if a.Contains(p) && b.Contains(p) {
							brute = true
							break
						}
					}
					// brute true implies Overlaps true (sample may miss
					// witnesses so only one direction is checked)
					if brute && !a.Overlaps(b) {
						t.Fatalf("ranges %v %v share %v but Overlaps=false", a, b, pts)
					}
				}
			}
		}
	}
}

func TestHiHelpers(t *testing.T) {
	if MinHi("a", "b") != "a" || MinHi("", "b") != "b" || MinHi("a", "") != "a" || MinHi("", "") != "" {
		t.Error("MinHi")
	}
	if MaxHi("a", "b") != "b" || MaxHi("", "b") != "" || MaxHi("a", "") != "" {
		t.Error("MaxHi")
	}
	if !HiLess("a", "b") || HiLess("b", "a") || HiLess("", "a") || !HiLess("a", "") || HiLess("", "") {
		t.Error("HiLess")
	}
}

func TestSortednessOfComposedKeys(t *testing.T) {
	// The semantic ordering the Twip timeline relies on: for a single user,
	// keys sort by time then poster.
	ks := []string{
		Join("t", "ann", "100", "bob"),
		Join("t", "ann", "100", "liz"),
		Join("t", "ann", "120", "bob"),
		Join("t", "ann", "099", "zed"),
	}
	sorted := append([]string(nil), ks...)
	sort.Strings(sorted)
	want := []string{"t|ann|099|zed", "t|ann|100|bob", "t|ann|100|liz", "t|ann|120|bob"}
	for i := range want {
		if sorted[i] != want[i] {
			t.Fatalf("sorted[%d] = %q, want %q", i, sorted[i], want[i])
		}
	}
}
