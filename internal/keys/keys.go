// Package keys provides lexicographic key utilities shared by the Pequod
// store, pattern matcher, and wire protocol.
//
// Pequod keys are strings composed of components separated by the byte '|'
// (Sep). The paper writes the upper bound of the range of keys beginning
// with "t|ann|" as "t|ann|+", and notes that the implementation spells it
// "t|ann}" — the prefix with its final byte incremented. PrefixEnd computes
// exactly that bound.
package keys

import "strings"

// Sep separates key components. Its successor byte, '}' in ASCII, is what
// makes prefix upper bounds printable in the paper's examples.
const Sep = '|'

// SepString is Sep as a string, for building keys with strings.Join.
const SepString = "|"

// PrefixEnd returns the smallest string greater than every string that has
// p as a prefix: p with its last byte incremented (trailing 0xff bytes are
// dropped first). The empty return value means "no upper bound"; Range and
// the store's scan treat an empty high bound as +infinity. PrefixEnd("")
// returns "", i.e. the whole keyspace.
func PrefixEnd(p string) string {
	b := []byte(p)
	for i := len(b) - 1; i >= 0; i-- {
		if b[i] != 0xff {
			b[i]++
			return string(b[:i+1])
		}
	}
	return ""
}

// RangeEnd returns the scan upper bound for all keys with the component
// prefix comps: PrefixEnd(Join(comps) + "|"). For example,
// RangeEnd("t", "ann") == "t|ann}".
func RangeEnd(comps ...string) string {
	return PrefixEnd(Join(comps...) + SepString)
}

// Join joins key components with Sep: Join("t", "ann", "100") == "t|ann|100".
func Join(comps ...string) string {
	return strings.Join(comps, SepString)
}

// Split splits a key into its components: Split("t|ann|100") ==
// ["t", "ann", "100"]. Split("") == [""].
func Split(key string) []string {
	return strings.Split(key, SepString)
}

// Table returns the first component of key — the logical table name the
// store's first tree layer separates on. Table("p|bob|100") == "p".
func Table(key string) string {
	if i := strings.IndexByte(key, Sep); i >= 0 {
		return key[:i]
	}
	return key
}

// Prefix returns the first n components of key joined with a trailing Sep,
// suitable as a subtable boundary prefix. If key has fewer than n
// components, Prefix returns key itself.
func Prefix(key string, n int) string {
	idx := 0
	for i := 0; i < n; i++ {
		j := strings.IndexByte(key[idx:], Sep)
		if j < 0 {
			return key
		}
		idx += j + 1
	}
	return key[:idx]
}

// Range is a half-open lexicographic key interval [Lo, Hi). An empty Hi
// means "no upper bound" (scan to the end of the keyspace).
type Range struct {
	Lo, Hi string
}

// RangeOf builds the Range covering exactly the keys that begin with the
// given component prefix, e.g. RangeOf("t", "ann") = [t|ann|, t|ann}).
func RangeOf(comps ...string) Range {
	lo := Join(comps...) + SepString
	return Range{Lo: lo, Hi: PrefixEnd(lo)}
}

// Contains reports whether key lies inside r.
func (r Range) Contains(key string) bool {
	return key >= r.Lo && (r.Hi == "" || key < r.Hi)
}

// Empty reports whether r contains no keys.
func (r Range) Empty() bool {
	return r.Hi != "" && r.Lo >= r.Hi
}

// Overlaps reports whether r and s share at least one key.
func (r Range) Overlaps(s Range) bool {
	if r.Empty() || s.Empty() {
		return false
	}
	loOK := s.Hi == "" || r.Lo < s.Hi
	hiOK := r.Hi == "" || s.Lo < r.Hi
	return loOK && hiOK
}

// Intersect returns the overlap of r and s (possibly empty).
func (r Range) Intersect(s Range) Range {
	lo := r.Lo
	if s.Lo > lo {
		lo = s.Lo
	}
	hi := r.Hi
	if hi == "" || (s.Hi != "" && s.Hi < hi) {
		hi = s.Hi
	}
	return Range{Lo: lo, Hi: hi}
}

// ContainsRange reports whether r fully contains s.
func (r Range) ContainsRange(s Range) bool {
	if s.Empty() {
		return true
	}
	if s.Lo < r.Lo {
		return false
	}
	if r.Hi == "" {
		return true
	}
	return s.Hi != "" && s.Hi <= r.Hi
}

// String renders the range in the paper's half-open notation.
func (r Range) String() string {
	hi := r.Hi
	if hi == "" {
		hi = "+inf"
	}
	return "[" + r.Lo + ", " + hi + ")"
}

// MinHi returns the smaller of two upper bounds, where "" is +infinity.
func MinHi(a, b string) string {
	if a == "" {
		return b
	}
	if b == "" {
		return a
	}
	if a < b {
		return a
	}
	return b
}

// MaxHi returns the larger of two upper bounds, where "" is +infinity.
func MaxHi(a, b string) string {
	if a == "" || b == "" {
		return ""
	}
	if a > b {
		return a
	}
	return b
}

// HiLess reports whether upper bound a is strictly smaller than b, with ""
// meaning +infinity.
func HiLess(a, b string) bool {
	if a == "" {
		return false
	}
	if b == "" {
		return true
	}
	return a < b
}
