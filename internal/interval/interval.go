// Package interval provides an interval tree over half-open lexicographic
// key ranges [Lo, Hi). Pequod stores updaters in an interval tree attached
// to each table (§3.2): "Many updaters can apply to a given key, so we
// store updaters in an interval tree. Whenever Pequod modifies its store,
// it finds all updaters applicable to the modified key."
//
// The tree is an augmented red-black tree ordered by Lo (duplicates
// permitted), each node carrying the maximum Hi of its subtree; stabbing
// and overlap queries prune on that aggregate. An empty Hi means +infinity,
// matching the keys package convention.
package interval

import (
	"encoding/binary"
	"strings"

	"pequod/internal/keys"
	"pequod/internal/rbtree"
)

// Entry is an interval in the tree. Lo, Hi, and Val are set at insertion;
// Val may be mutated by the caller afterwards (updater merging relies on
// this). Hi may be widened in place via SetHi.
type Entry[V any] struct {
	lo, hi string
	Val    V
	max    string // subtree max Hi ("" = +inf); augmentation storage
	node   *rbtree.Node[*Entry[V]]
	tree   *Tree[V]
}

// Lo returns the inclusive lower bound.
func (e *Entry[V]) Lo() string { return e.lo }

// Hi returns the exclusive upper bound ("" = +infinity).
func (e *Entry[V]) Hi() string { return e.hi }

// Range returns the entry's interval as a keys.Range.
func (e *Entry[V]) Range() keys.Range { return keys.Range{Lo: e.lo, Hi: e.hi} }

// SetHi widens or narrows the entry's upper bound in place, refreshing the
// tree's augmentation. The lower bound is immutable (it is the BST key).
func (e *Entry[V]) SetHi(hi string) {
	e.hi = hi
	if e.tree != nil {
		e.tree.reaugment(e.node)
	}
}

// Tree is an interval tree. The zero value is NOT ready to use; call New.
type Tree[V any] struct {
	t   rbtree.Tree[*Entry[V]]
	seq uint64
}

// New returns an empty interval tree.
func New[V any]() *Tree[V] {
	tr := &Tree[V]{}
	tr.t.Augment = func(n *rbtree.Node[*Entry[V]]) {
		e := n.Val
		m := e.hi
		if l := n.Left(); l != nil {
			m = keys.MaxHi(m, l.Val.max)
		}
		if r := n.Right(); r != nil {
			m = keys.MaxHi(m, r.Val.max)
		}
		e.max = m
	}
	return tr
}

func (tr *Tree[V]) reaugment(n *rbtree.Node[*Entry[V]]) {
	for ; n != nil; n = n.Parent() {
		tr.t.Augment(n)
	}
}

// Len returns the number of intervals.
func (tr *Tree[V]) Len() int { return tr.t.Len() }

// encodeKey builds the BST key: order-preserving escaped Lo, a 0x00
// terminator (sorting before any escaped byte), then a sequence number so
// duplicate Lo values get distinct keys in insertion order.
func encodeKey(lo string, seq uint64) string {
	var b strings.Builder
	b.Grow(len(lo) + 10)
	for i := 0; i < len(lo); i++ {
		switch c := lo[i]; c {
		case 0x00:
			b.WriteByte(0x01)
			b.WriteByte(0x01)
		case 0x01:
			b.WriteByte(0x01)
			b.WriteByte(0x02)
		default:
			b.WriteByte(c)
		}
	}
	b.WriteByte(0x00)
	var s [8]byte
	binary.BigEndian.PutUint64(s[:], seq)
	b.Write(s[:])
	return b.String()
}

// Insert adds the interval [lo, hi) carrying v and returns its Entry.
func (tr *Tree[V]) Insert(lo, hi string, v V) *Entry[V] {
	e := &Entry[V]{lo: lo, hi: hi, Val: v, tree: tr}
	tr.seq++
	n, _ := tr.t.Insert(encodeKey(lo, tr.seq), e)
	e.node = n
	return e
}

// Delete removes e from the tree. Deleting an entry twice is a no-op.
func (tr *Tree[V]) Delete(e *Entry[V]) {
	if e.node == nil {
		return
	}
	tr.t.Delete(e.node)
	e.node = nil
	e.tree = nil
}

// hiAfter reports whether upper bound hi ("" = +inf) is > key, i.e.
// whether an interval ending at hi can still contain key.
func hiAfter(hi, key string) bool {
	return hi == "" || hi > key
}

// Stab calls fn for every interval containing key, in Lo order. fn may not
// mutate the tree; collect entries first if mutation is needed.
func (tr *Tree[V]) Stab(key string, fn func(e *Entry[V]) bool) {
	stab(tr.t.Root(), key, fn)
}

func stab[V any](n *rbtree.Node[*Entry[V]], key string, fn func(e *Entry[V]) bool) bool {
	if n == nil || !hiAfter(n.Val.max, key) {
		return true
	}
	if !stab(n.Left(), key, fn) {
		return false
	}
	e := n.Val
	if e.lo <= key {
		if hiAfter(e.hi, key) {
			if !fn(e) {
				return false
			}
		}
		if !stab(n.Right(), key, fn) {
			return false
		}
	}
	// If e.lo > key, every interval in the right subtree starts after key
	// too, so the search prunes there.
	return true
}

// Overlap calls fn for every non-empty interval overlapping [lo, hi)
// (hi == "" means +infinity), in Lo order. An empty query matches nothing.
func (tr *Tree[V]) Overlap(lo, hi string, fn func(e *Entry[V]) bool) {
	if hi != "" && lo >= hi {
		return
	}
	overlap(tr.t.Root(), lo, hi, fn)
}

func overlap[V any](n *rbtree.Node[*Entry[V]], lo, hi string, fn func(e *Entry[V]) bool) bool {
	if n == nil || !hiAfter(n.Val.max, lo) {
		return true
	}
	if !overlap(n.Left(), lo, hi, fn) {
		return false
	}
	e := n.Val
	startsBeforeHi := hi == "" || e.lo < hi
	if startsBeforeHi {
		notEmpty := e.hi == "" || e.lo < e.hi
		if notEmpty && hiAfter(e.hi, lo) {
			if !fn(e) {
				return false
			}
		}
		if !overlap(n.Right(), lo, hi, fn) {
			return false
		}
	}
	return true
}

// All calls fn for every interval in Lo order.
func (tr *Tree[V]) All(fn func(e *Entry[V]) bool) {
	tr.t.Ascend("", "", func(n *rbtree.Node[*Entry[V]]) bool {
		return fn(n.Val)
	})
}

// CheckInvariants validates the underlying red-black tree plus the max-Hi
// augmentation; exported for tests.
func (tr *Tree[V]) CheckInvariants() error {
	if err := tr.t.CheckInvariants(); err != nil {
		return err
	}
	return checkMax(tr.t.Root())
}

func checkMax[V any](n *rbtree.Node[*Entry[V]]) error {
	if n == nil {
		return nil
	}
	want := n.Val.hi
	if l := n.Left(); l != nil {
		want = keys.MaxHi(want, l.Val.max)
	}
	if r := n.Right(); r != nil {
		want = keys.MaxHi(want, r.Val.max)
	}
	if n.Val.max != want {
		return errStaleMax{}
	}
	if err := checkMax(n.Left()); err != nil {
		return err
	}
	return checkMax(n.Right())
}

type errStaleMax struct{}

func (errStaleMax) Error() string { return "interval: stale max augmentation" }
