package interval

import (
	"fmt"
	"math/rand"
	"sort"
	"testing"

	"pequod/internal/keys"
)

type iv struct{ lo, hi string }

func bruteStab(ivs map[*Entry[int]]iv, k string) []int {
	var out []int
	for e, r := range ivs {
		if k >= r.lo && (r.hi == "" || k < r.hi) {
			out = append(out, e.Val)
		}
	}
	sort.Ints(out)
	return out
}

func bruteOverlap(ivs map[*Entry[int]]iv, lo, hi string) []int {
	q := keys.Range{Lo: lo, Hi: hi}
	var out []int
	for e, r := range ivs {
		if q.Overlaps(keys.Range{Lo: r.lo, Hi: r.hi}) {
			out = append(out, e.Val)
		}
	}
	sort.Ints(out)
	return out
}

func TestStabBasic(t *testing.T) {
	tr := New[int]()
	tr.Insert("b", "f", 1)
	tr.Insert("d", "h", 2)
	tr.Insert("a", "c", 3)
	tr.Insert("x", "", 4) // unbounded
	got := map[int]bool{}
	tr.Stab("d", func(e *Entry[int]) bool { got[e.Val] = true; return true })
	if !got[1] || !got[2] || got[3] || got[4] || len(got) != 2 {
		t.Fatalf("Stab(d) = %v", got)
	}
	got = map[int]bool{}
	tr.Stab("zzz", func(e *Entry[int]) bool { got[e.Val] = true; return true })
	if !got[4] || len(got) != 1 {
		t.Fatalf("Stab(zzz) = %v", got)
	}
}

func TestOverlapBasic(t *testing.T) {
	tr := New[int]()
	tr.Insert("b", "f", 1)
	tr.Insert("f", "h", 2)
	var got []int
	tr.Overlap("e", "g", func(e *Entry[int]) bool { got = append(got, e.Val); return true })
	sort.Ints(got)
	if len(got) != 2 {
		t.Fatalf("Overlap(e,g) = %v", got)
	}
	got = nil
	tr.Overlap("f", "g", func(e *Entry[int]) bool { got = append(got, e.Val); return true })
	if len(got) != 1 || got[0] != 2 {
		t.Fatalf("Overlap(f,g) = %v (half-open bounds must exclude [b,f))", got)
	}
}

func TestDuplicateLo(t *testing.T) {
	tr := New[int]()
	e1 := tr.Insert("k", "m", 1)
	e2 := tr.Insert("k", "z", 2)
	e3 := tr.Insert("k", "m", 3)
	if tr.Len() != 3 {
		t.Fatalf("Len = %d", tr.Len())
	}
	var got []int
	tr.Stab("n", func(e *Entry[int]) bool { got = append(got, e.Val); return true })
	if len(got) != 1 || got[0] != 2 {
		t.Fatalf("Stab(n) = %v", got)
	}
	tr.Delete(e1)
	tr.Delete(e3)
	got = nil
	tr.Stab("k", func(e *Entry[int]) bool { got = append(got, e.Val); return true })
	if len(got) != 1 || got[0] != 2 {
		t.Fatalf("after delete, Stab(k) = %v", got)
	}
	tr.Delete(e2)
	tr.Delete(e2) // double delete is a no-op
	if tr.Len() != 0 {
		t.Fatalf("Len after deletes = %d", tr.Len())
	}
}

func TestSetHi(t *testing.T) {
	tr := New[int]()
	e := tr.Insert("b", "d", 1)
	tr.Insert("a", "b", 2)
	tr.Insert("c", "e", 3)
	var got []int
	tr.Stab("f", func(e *Entry[int]) bool { got = append(got, e.Val); return true })
	if len(got) != 0 {
		t.Fatalf("Stab(f) before widen = %v", got)
	}
	e.SetHi("z") // widen; augmentation must propagate
	got = nil
	tr.Stab("f", func(e *Entry[int]) bool { got = append(got, e.Val); return true })
	if len(got) != 1 || got[0] != 1 {
		t.Fatalf("Stab(f) after widen = %v", got)
	}
	if err := tr.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestEntryAccessors(t *testing.T) {
	tr := New[int]()
	e := tr.Insert("lo", "hi", 9)
	if e.Lo() != "lo" || e.Hi() != "hi" {
		t.Fatal("accessors")
	}
	if r := e.Range(); r.Lo != "lo" || r.Hi != "hi" {
		t.Fatal("Range")
	}
}

func TestRandomizedAgainstBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	tr := New[int]()
	live := map[*Entry[int]]iv{}
	var entries []*Entry[int]
	point := func() string { return fmt.Sprintf("p%03d", rng.Intn(500)) }
	for step := 0; step < 8000; step++ {
		switch rng.Intn(10) {
		case 0, 1, 2, 3:
			lo := point()
			hi := point()
			if rng.Intn(10) == 0 {
				hi = "" // unbounded
			} else if hi < lo {
				lo, hi = hi, lo
			}
			e := tr.Insert(lo, hi, step)
			live[e] = iv{lo, hi}
			entries = append(entries, e)
		case 4, 5:
			if len(entries) > 0 {
				i := rng.Intn(len(entries))
				e := entries[i]
				tr.Delete(e)
				delete(live, e)
				entries[i] = entries[len(entries)-1]
				entries = entries[:len(entries)-1]
			}
		case 6:
			if len(entries) > 0 {
				e := entries[rng.Intn(len(entries))]
				hi := point()
				if hi >= e.Lo() {
					e.SetHi(hi)
					live[e] = iv{e.Lo(), hi}
				}
			}
		case 7, 8:
			k := point()
			var got []int
			tr.Stab(k, func(e *Entry[int]) bool { got = append(got, e.Val); return true })
			sort.Ints(got)
			want := bruteStab(live, k)
			if !equalInts(got, want) {
				t.Fatalf("step %d: Stab(%q) = %v, want %v", step, k, got, want)
			}
		default:
			lo, hi := point(), point()
			if rng.Intn(8) == 0 {
				hi = ""
			} else if hi < lo {
				lo, hi = hi, lo
			}
			var got []int
			tr.Overlap(lo, hi, func(e *Entry[int]) bool { got = append(got, e.Val); return true })
			sort.Ints(got)
			want := bruteOverlap(live, lo, hi)
			if !equalInts(got, want) {
				t.Fatalf("step %d: Overlap(%q,%q) = %v, want %v", step, lo, hi, got, want)
			}
		}
		if step%503 == 0 {
			if err := tr.CheckInvariants(); err != nil {
				t.Fatalf("step %d: %v", step, err)
			}
		}
	}
	if err := tr.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestEarlyStop(t *testing.T) {
	tr := New[int]()
	for i := 0; i < 10; i++ {
		tr.Insert("a", "z", i)
	}
	calls := 0
	tr.Stab("m", func(e *Entry[int]) bool { calls++; return calls < 3 })
	if calls != 3 {
		t.Fatalf("Stab early stop: %d", calls)
	}
	calls = 0
	tr.Overlap("a", "b", func(e *Entry[int]) bool { calls++; return false })
	if calls != 1 {
		t.Fatalf("Overlap early stop: %d", calls)
	}
	calls = 0
	tr.All(func(e *Entry[int]) bool { calls++; return true })
	if calls != 10 {
		t.Fatalf("All visited %d", calls)
	}
}

func TestKeysContainingZeroBytes(t *testing.T) {
	// The order-preserving escape must keep BST order consistent with Lo
	// order even when keys contain 0x00/0x01 bytes.
	tr := New[int]()
	tr.Insert("a\x00b", "a\x00c", 1)
	tr.Insert("a", "a\x00zzz", 2)
	tr.Insert("a\x01", "b", 3)
	var got []int
	tr.Stab("a\x00b", func(e *Entry[int]) bool { got = append(got, e.Val); return true })
	sort.Ints(got)
	if !equalInts(got, []int{1, 2}) {
		t.Fatalf("Stab = %v", got)
	}
	if err := tr.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func equalInts(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func BenchmarkStab(b *testing.B) {
	tr := New[int]()
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 10000; i++ {
		lo := fmt.Sprintf("p%05d", rng.Intn(100000))
		hi := fmt.Sprintf("p%05d", rng.Intn(100000))
		if hi < lo {
			lo, hi = hi, lo
		}
		tr.Insert(lo, hi, i)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		k := fmt.Sprintf("p%05d", i%100000)
		tr.Stab(k, func(e *Entry[int]) bool { return true })
	}
}
