package pequod

import (
	"context"
	"fmt"
	"reflect"
	"testing"
	"time"
)

const timelineJoin = "t|<user>|<time>|<poster> = check s|<user>|<poster> copy p|<poster>|<time>"

func TestEmbeddedCacheQuickstart(t *testing.T) {
	ctx := context.Background()
	c, err := NewCache(Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if err := c.Install(ctx, timelineJoin); err != nil {
		t.Fatal(err)
	}
	must := func(err error) {
		t.Helper()
		if err != nil {
			t.Fatal(err)
		}
	}
	must(c.Put(ctx, "s|ann|bob", "1"))
	must(c.Put(ctx, "p|bob|100", "Hi"))
	r := ScanRange("t", "ann")
	kvs, err := c.Scan(ctx, r.Lo, r.Hi, 0)
	must(err)
	if len(kvs) != 1 || kvs[0].Key != "t|ann|100|bob" || kvs[0].Value != "Hi" {
		t.Fatalf("timeline = %v", kvs)
	}
	if v, ok, err := c.Get(ctx, "t|ann|100|bob"); err != nil || !ok || v != "Hi" {
		t.Fatal("get")
	}
	if n, err := c.Count(ctx, r.Lo, r.Hi); err != nil || n != 1 {
		t.Fatal("count")
	}
	if found, err := c.Remove(ctx, "p|bob|100"); err != nil || !found {
		t.Fatal("remove")
	}
	if kvs, err := c.Scan(ctx, r.Lo, r.Hi, 0); err != nil || len(kvs) != 0 {
		t.Fatalf("after remove: %v", kvs)
	}
	st, err := c.Stats(ctx)
	if err != nil || st.JoinExecs == 0 {
		t.Fatal("stats")
	}
	if c.Bytes() <= 0 || c.Len() == 0 {
		t.Fatal("size accounting")
	}
}

func TestNewCacheError(t *testing.T) {
	if _, err := NewCache(Options{}, WithShards(3), WithBounds("m")); err == nil {
		t.Fatal("mismatched shards/bounds accepted")
	}
	// The deprecated constructor preserves its panicking contract.
	defer func() {
		if recover() == nil {
			t.Fatal("New did not panic on invalid bounds")
		}
	}()
	New(Options{}, WithBounds("b", "a"))
}

func TestInstallError(t *testing.T) {
	ctx := context.Background()
	c, err := NewCache(Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if err := c.Install(ctx, "bogus join"); err == nil {
		t.Fatal("bad join accepted")
	}
	if err := ParseJoins("also bogus"); err == nil {
		t.Fatal("ParseJoins accepted garbage")
	}
	if err := ParseJoins("a|<x> = copy b|<x>"); err != nil {
		t.Fatal(err)
	}
}

func TestKeyHelpers(t *testing.T) {
	if JoinKey("t", "ann", "100") != "t|ann|100" {
		t.Fatal("JoinKey")
	}
	parts := SplitKey("t|ann|100")
	if len(parts) != 3 || parts[1] != "ann" {
		t.Fatal("SplitKey")
	}
	if PrefixEnd("t|ann|") != "t|ann}" {
		t.Fatal("PrefixEnd")
	}
	lo, hi := RangeOf("t", "ann")
	if lo != "t|ann|" || hi != "t|ann}" {
		t.Fatal("RangeOf")
	}
	if r := ScanRange("t", "ann"); r.Lo != lo || r.Hi != hi {
		t.Fatal("ScanRange")
	}
}

func TestNetworkedQuickstart(t *testing.T) {
	ctx := context.Background()
	s, err := NewServer(ServerConfig{Name: "facade-test"})
	if err != nil {
		t.Fatal(err)
	}
	addr, err := s.Start()
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	c, err := DialContext(ctx, addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if err := c.Install(ctx, "karma|<a> = count vote|<a>|<id>|<v>"); err != nil {
		t.Fatal(err)
	}
	var votes []KV
	for i := 0; i < 5; i++ {
		votes = append(votes, KV{Key: fmt.Sprintf("vote|liz|a1|u%d", i), Value: "1"})
	}
	if err := c.PutBatch(ctx, votes); err != nil {
		t.Fatal(err)
	}
	v, found, err := c.Get(ctx, "karma|liz")
	if err != nil || !found || v != "5" {
		t.Fatalf("karma = %q %v %v", v, found, err)
	}
	if c.RPCs() == 0 {
		t.Fatal("RPC counter")
	}
}

func TestWriteAroundQuickstart(t *testing.T) {
	ctx := context.Background()
	db := NewDB()
	defer db.Close()
	db.Put("p|bob|100", "from the database")
	db.Put("s|ann|bob", "1")

	s, err := NewServer(ServerConfig{Joins: timelineJoin})
	if err != nil {
		t.Fatal(err)
	}
	s.AttachDB(db, "p", "s")
	addr, err := s.Start()
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	c, err := DialContext(ctx, addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	kvs, err := c.Scan(ctx, "t|ann|", PrefixEnd("t|ann|"), 0)
	if err != nil || len(kvs) != 1 || kvs[0].Value != "from the database" {
		t.Fatalf("write-around timeline = %v, %v", kvs, err)
	}
}

// TestStorePolymorphism runs the same application code against all
// three deployment shapes through the Store interface — the point of
// the unified API.
func TestStorePolymorphism(t *testing.T) {
	ctx := context.Background()

	embedded, err := NewCache(Options{})
	if err != nil {
		t.Fatal(err)
	}

	srv, err := NewServer(ServerConfig{})
	if err != nil {
		t.Fatal(err)
	}
	addr, err := srv.Start()
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	networked, err := DialContext(ctx, addr)
	if err != nil {
		t.Fatal(err)
	}

	var addrs []string
	for i := 0; i < 2; i++ {
		m, err := NewServer(ServerConfig{Name: fmt.Sprintf("m%d", i)})
		if err != nil {
			t.Fatal(err)
		}
		a, err := m.Start()
		if err != nil {
			t.Fatal(err)
		}
		defer m.Close()
		addrs = append(addrs, a)
	}
	clustered, err := NewCluster(ctx, ClusterConfig{Addrs: addrs, Bounds: []string{"t|"}})
	if err != nil {
		t.Fatal(err)
	}

	var results [][]KV
	for _, store := range []Store{embedded, networked, clustered} {
		if err := store.Install(ctx, timelineJoin); err != nil {
			t.Fatal(err)
		}
		if err := store.PutBatch(ctx, []KV{
			{Key: "s|ann|bob", Value: "1"},
			{Key: "p|bob|100", Value: "Hi"},
			{Key: "p|bob|120", Value: "again"},
		}); err != nil {
			t.Fatal(err)
		}
		if err := store.Quiesce(ctx); err != nil {
			t.Fatal(err)
		}
		r := ScanRange("t", "ann")
		kvs, err := store.Scan(ctx, r.Lo, r.Hi, 0)
		if err != nil {
			t.Fatal(err)
		}
		if n, err := store.Count(ctx, r.Lo, r.Hi); err != nil || n != int64(len(kvs)) {
			t.Fatalf("count = %d, %v", n, err)
		}
		ls, err := store.GetBatch(ctx, []string{"t|ann|100|bob", "t|ann|999|bob"})
		if err != nil || !ls[0].Found || ls[0].Value != "Hi" || ls[1].Found {
			t.Fatalf("GetBatch = %+v, %v", ls, err)
		}
		if found, err := store.Remove(ctx, "s|ann|bob"); err != nil || !found {
			t.Fatalf("Remove = %v, %v", found, err)
		}
		scans, err := store.ScanBatch(ctx, []Range{r, ScanRange("p", "bob")}, 0)
		if err != nil || len(scans) != 2 {
			t.Fatalf("ScanBatch = %v, %v", scans, err)
		}
		st, err := store.Stats(ctx)
		if err != nil || st.Puts == 0 {
			t.Fatalf("Stats = %+v, %v", st, err)
		}
		results = append(results, kvs)
		if err := store.Close(); err != nil {
			t.Fatal(err)
		}
	}
	// All three deployments computed the identical timeline.
	for i := 1; i < len(results); i++ {
		if !reflect.DeepEqual(results[i], results[0]) {
			t.Fatalf("deployment %d diverged: %v vs %v", i, results[i], results[0])
		}
	}
}

// TestClientCancellation: context expiry fails the call fast and leaves
// the connection usable (the issue's cancellation contract, at the
// public API level).
func TestClientCancellation(t *testing.T) {
	s, err := NewServer(ServerConfig{})
	if err != nil {
		t.Fatal(err)
	}
	addr, err := s.Start()
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	c, err := DialContext(context.Background(), addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	canceled, cancel := context.WithCancel(context.Background())
	cancel()
	if _, _, err := c.Get(canceled, "k"); err == nil {
		t.Fatal("canceled Get succeeded")
	}
	if _, err := c.Scan(canceled, "", "", 0); err == nil {
		t.Fatal("canceled Scan succeeded")
	}
	ctx := context.Background()
	if err := c.Put(ctx, "k", "v"); err != nil {
		t.Fatalf("connection unusable after cancellation: %v", err)
	}
	if v, found, err := c.Get(ctx, "k"); err != nil || !found || v != "v" {
		t.Fatalf("Get after cancellation = %q %v %v", v, found, err)
	}
}

// TestDialContextCancellation: the connection attempt is bounded by the
// context instead of hanging for the kernel default.
func TestDialContextCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	start := time.Now()
	if _, err := DialContext(ctx, "203.0.113.1:9"); err == nil {
		t.Fatal("dial under canceled context succeeded")
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("dial hung %v despite canceled context", elapsed)
	}
}
