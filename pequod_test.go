package pequod

import (
	"fmt"
	"testing"
)

func TestEmbeddedCacheQuickstart(t *testing.T) {
	c := New(Options{})
	if err := c.Install("t|<user>|<time>|<poster> = check s|<user>|<poster> copy p|<poster>|<time>"); err != nil {
		t.Fatal(err)
	}
	c.Put("s|ann|bob", "1")
	c.Put("p|bob|100", "Hi")
	lo, hi := RangeOf("t", "ann")
	kvs := c.Scan(lo, hi, 0)
	if len(kvs) != 1 || kvs[0].Key != "t|ann|100|bob" || kvs[0].Value != "Hi" {
		t.Fatalf("timeline = %v", kvs)
	}
	if v, ok := c.Get("t|ann|100|bob"); !ok || v != "Hi" {
		t.Fatal("get")
	}
	if c.Count(lo, hi) != 1 {
		t.Fatal("count")
	}
	if !c.Remove("p|bob|100") {
		t.Fatal("remove")
	}
	if kvs := c.Scan(lo, hi, 0); len(kvs) != 0 {
		t.Fatalf("after remove: %v", kvs)
	}
	if c.Stats().JoinExecs == 0 {
		t.Fatal("stats")
	}
	if c.Bytes() <= 0 || c.Len() == 0 {
		t.Fatal("size accounting")
	}
}

func TestInstallError(t *testing.T) {
	c := New(Options{})
	if err := c.Install("bogus join"); err == nil {
		t.Fatal("bad join accepted")
	}
	if err := ParseJoins("also bogus"); err == nil {
		t.Fatal("ParseJoins accepted garbage")
	}
	if err := ParseJoins("a|<x> = copy b|<x>"); err != nil {
		t.Fatal(err)
	}
}

func TestKeyHelpers(t *testing.T) {
	if JoinKey("t", "ann", "100") != "t|ann|100" {
		t.Fatal("JoinKey")
	}
	parts := SplitKey("t|ann|100")
	if len(parts) != 3 || parts[1] != "ann" {
		t.Fatal("SplitKey")
	}
	if PrefixEnd("t|ann|") != "t|ann}" {
		t.Fatal("PrefixEnd")
	}
	lo, hi := RangeOf("t", "ann")
	if lo != "t|ann|" || hi != "t|ann}" {
		t.Fatal("RangeOf")
	}
}

func TestNetworkedQuickstart(t *testing.T) {
	s, err := NewServer(ServerConfig{Name: "facade-test"})
	if err != nil {
		t.Fatal(err)
	}
	addr, err := s.Start()
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	c, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if err := c.AddJoin("karma|<a> = count vote|<a>|<id>|<v>"); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		if err := c.Put(fmt.Sprintf("vote|liz|a1|u%d", i), "1"); err != nil {
			t.Fatal(err)
		}
	}
	v, found, err := c.Get("karma|liz")
	if err != nil || !found || v != "5" {
		t.Fatalf("karma = %q %v %v", v, found, err)
	}
}

func TestWriteAroundQuickstart(t *testing.T) {
	db := NewDB()
	defer db.Close()
	db.Put("p|bob|100", "from the database")
	db.Put("s|ann|bob", "1")

	s, err := NewServer(ServerConfig{
		Joins: "t|<user>|<time>|<poster> = check s|<user>|<poster> copy p|<poster>|<time>",
	})
	if err != nil {
		t.Fatal(err)
	}
	s.AttachDB(db, "p", "s")
	addr, err := s.Start()
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	c, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	kvs, err := c.Scan("t|ann|", PrefixEnd("t|ann|"), 0)
	if err != nil || len(kvs) != 1 || kvs[0].Value != "from the database" {
		t.Fatalf("write-around timeline = %v, %v", kvs, err)
	}
}
