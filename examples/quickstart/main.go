// Quickstart: the paper's §2.2 walkthrough on an embedded Pequod cache,
// through the unified Store API.
//
// Run: go run ./examples/quickstart
package main

import (
	"context"
	"fmt"
	"log"

	"pequod"
)

func main() {
	ctx := context.Background()
	cache, err := pequod.NewCache(pequod.Options{})
	if err != nil {
		log.Fatal(err)
	}
	defer cache.Close()

	// The Twip timeline join (§2.2): "defines the value of
	// t|user|time|poster as a copy of the value of p|poster|time
	// whenever s|user|poster exists."
	err = cache.Install(ctx,
		"t|<user>|<time>|<poster> = check s|<user>|<poster> copy p|<poster>|<time>")
	if err != nil {
		log.Fatal(err)
	}

	// ann follows bob; bob tweets at time 100.
	must(cache.Put(ctx, "s|ann|bob", "1"))
	must(cache.Put(ctx, "p|bob|100", "Hi"))

	// ann checks her timeline: one ordered scan of [t|ann|, t|ann}).
	r := pequod.ScanRange("t", "ann")
	fmt.Println("ann's timeline after bob's first tweet:")
	printScan(ctx, cache, r)

	// "If bob tweets again at time 120, the database will notify Pequod...
	// This put triggers a process that automatically copies the tweet to
	// key t|ann|120|bob" — eager incremental maintenance; no join rerun.
	must(cache.Put(ctx, "p|bob|120", "Hi again"))
	fmt.Println("after bob tweets again (maintained incrementally):")
	printScan(ctx, cache, r)

	// Subscription changes recompute lazily on the next read (§3.2).
	must(cache.PutBatch(ctx, []pequod.KV{
		{Key: "s|ann|liz", Value: "1"},
		{Key: "p|liz|110", Value: "liz was here"},
	}))
	fmt.Println("after ann follows liz (lazy backfill on read):")
	printScan(ctx, cache, r)

	st, err := cache.Stats(ctx)
	must(err)
	fmt.Printf("stats: %d join executions, %d updater fires, %d log entries applied\n",
		st.JoinExecs, st.UpdaterFires, st.LogsApplied)
}

// printScan works against any Store — the same code serves an embedded
// cache, one server, or a cluster.
func printScan(ctx context.Context, s pequod.Store, r pequod.Range) {
	kvs, err := s.Scan(ctx, r.Lo, r.Hi, 0)
	must(err)
	for _, kv := range kvs {
		fmt.Printf("  %s -> %q\n", kv.Key, kv.Value)
	}
}

func must(err error) {
	if err != nil {
		log.Fatal(err)
	}
}
