// Quickstart: the paper's §2.2 walkthrough on an embedded Pequod cache.
//
// Run: go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"pequod"
)

func main() {
	cache := pequod.New(pequod.Options{})

	// The Twip timeline join (§2.2): "defines the value of
	// t|user|time|poster as a copy of the value of p|poster|time
	// whenever s|user|poster exists."
	err := cache.Install(
		"t|<user>|<time>|<poster> = check s|<user>|<poster> copy p|<poster>|<time>")
	if err != nil {
		log.Fatal(err)
	}

	// ann follows bob; bob tweets at time 100.
	cache.Put("s|ann|bob", "1")
	cache.Put("p|bob|100", "Hi")

	// ann checks her timeline: one ordered scan of [t|ann|, t|ann}).
	lo, hi := pequod.RangeOf("t", "ann")
	fmt.Println("ann's timeline after bob's first tweet:")
	for _, kv := range cache.Scan(lo, hi, 0) {
		fmt.Printf("  %s -> %q\n", kv.Key, kv.Value)
	}

	// "If bob tweets again at time 120, the database will notify Pequod...
	// This put triggers a process that automatically copies the tweet to
	// key t|ann|120|bob" — eager incremental maintenance; no join rerun.
	cache.Put("p|bob|120", "Hi again")
	fmt.Println("after bob tweets again (maintained incrementally):")
	for _, kv := range cache.Scan(lo, hi, 0) {
		fmt.Printf("  %s -> %q\n", kv.Key, kv.Value)
	}

	// Subscription changes recompute lazily on the next read (§3.2).
	cache.Put("s|ann|liz", "1")
	cache.Put("p|liz|110", "liz was here")
	fmt.Println("after ann follows liz (lazy backfill on read):")
	for _, kv := range cache.Scan(lo, hi, 0) {
		fmt.Printf("  %s -> %q\n", kv.Key, kv.Value)
	}

	st := cache.Stats()
	fmt.Printf("stats: %d join executions, %d updater fires, %d log entries applied\n",
		st.JoinExecs, st.UpdaterFires, st.LogsApplied)
}
