// Distributed example: the §2.4 topology — base (home) servers absorbing
// writes, a compute server executing the timeline join against remotely
// fetched base data, kept fresh by cross-server subscriptions.
//
// Run: go run ./examples/distributed
package main

import (
	"fmt"
	"log"
	"time"

	"pequod"
	"pequod/internal/partition"
)

func main() {
	// Two home servers split the base tables: posters a–m on home0,
	// n–z on home1 (posts by poster; subscriptions by user).
	home0 := mustServer(pequod.ServerConfig{Name: "home0"})
	home1 := mustServer(pequod.ServerConfig{Name: "home1"})
	addr0 := mustStart(home0)
	addr1 := mustStart(home1)
	defer home0.Close()
	defer home1.Close()

	// The partition function maps key ranges to home servers (§2.4).
	pmap := partition.MustNew("p|n", "s|", "s|n")
	addrs := []string{addr0, addr1, addr0, addr1}

	compute := mustServer(pequod.ServerConfig{
		Name:  "compute",
		Joins: "t|<user>|<time>|<poster> = check s|<user>|<poster> copy p|<poster>|<time>",
	})
	if err := compute.ConnectPeers(pmap, addrs, "p", "s"); err != nil {
		log.Fatal(err)
	}
	caddr := mustStart(compute)
	defer compute.Close()
	fmt.Printf("homes: %s %s; compute: %s\n", addr0, addr1, caddr)

	h0 := mustDial(addr0)
	h1 := mustDial(addr1)
	cc := mustDial(caddr)
	defer h0.Close()
	defer h1.Close()
	defer cc.Close()

	// Application writes go to home servers (write-around style).
	must(h0.Put("s|ann|bob", "1"))
	must(h0.Put("s|ann|zed", "1"))
	must(h0.Put("p|bob|100", "bob from home0"))
	must(h1.Put("p|zed|150", "zed from home1"))

	// Reading ann's timeline at the compute server fetches base ranges
	// from both homes, installs subscriptions, and computes the join.
	kvs, err := cc.Scan("t|ann|", pequod.PrefixEnd("t|ann|"), 0)
	must(err)
	fmt.Println("ann's timeline (computed from two home servers):")
	for _, kv := range kvs {
		fmt.Printf("  %s -> %q\n", kv.Key, kv.Value)
	}

	// A new post at its home flows to the compute server's materialized
	// timeline through the subscription — asynchronously (eventual
	// consistency, §2.4).
	must(h1.Put("p|zed|200", "zed again"))
	for i := 0; i < 100; i++ {
		if v, found, _ := cc.Get("t|ann|200|zed"); found {
			fmt.Printf("subscription delivered: t|ann|200|zed -> %q\n", v)
			break
		}
		time.Sleep(5 * time.Millisecond)
	}
}

func mustServer(cfg pequod.ServerConfig) *pequod.Server {
	s, err := pequod.NewServer(cfg)
	if err != nil {
		log.Fatal(err)
	}
	return s
}

func mustStart(s *pequod.Server) string {
	addr, err := s.Start()
	if err != nil {
		log.Fatal(err)
	}
	return addr
}

func mustDial(addr string) *pequod.Client {
	c, err := pequod.Dial(addr)
	if err != nil {
		log.Fatal(err)
	}
	return c
}

func must(err error) {
	if err != nil {
		log.Fatal(err)
	}
}
