// Distributed example: the §2.4 topology — servers partitioned by key
// range, the timeline join computed where the timelines live, kept
// fresh by cross-server subscriptions.
//
// The application never routes a key itself: it builds a
// pequod.Cluster, which owns the partition map, sends every write to
// its home server, fans cross-server scans out and merges them, and
// wires the server-to-server subscription mesh when the join is
// installed.
//
// Run: go run ./examples/distributed
package main

import (
	"context"
	"fmt"
	"log"
	"time"

	"pequod"
)

func main() {
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()

	// Two servers split the key space into four ranges: posters a-m and
	// n-z on alternating homes for the base tables, and the computed
	// timelines (t|...) on both.
	home0 := mustServer(pequod.ServerConfig{Name: "home0"})
	home1 := mustServer(pequod.ServerConfig{Name: "home1"})
	addr0 := mustStart(home0)
	addr1 := mustStart(home1)
	defer home0.Close()
	defer home1.Close()
	fmt.Printf("servers: %s %s\n", addr0, addr1)

	// The partition function maps key ranges to home servers (§2.4):
	// range i is [bounds[i-1], bounds[i]), served by addrs[i]. Building
	// the cluster installs the timeline join on every member and wires
	// the cross-server base-data subscriptions for its source tables.
	cluster, err := pequod.NewCluster(ctx, pequod.ClusterConfig{
		Bounds: []string{"p|n", "s|", "t|"},
		Addrs:  []string{addr0, addr1, addr0, addr1},
		Joins:  "t|<user>|<time>|<poster> = check s|<user>|<poster> copy p|<poster>|<time>",
	})
	if err != nil {
		log.Fatal(err)
	}
	defer cluster.Close()

	// Application writes go wherever the cluster routes them; ann's
	// subscriptions and bob's posts land on home0, zed's posts on home1.
	must(cluster.Put(ctx, "s|ann|bob", "1"))
	must(cluster.Put(ctx, "s|ann|zed", "1"))
	must(cluster.PutBatch(ctx, []pequod.KV{
		{Key: "p|bob|100", Value: "bob from home0"},
		{Key: "p|zed|150", Value: "zed from home1"},
	}))

	// Reading ann's timeline routes to the member owning t|ann, which
	// fetches base ranges from both homes, installs subscriptions, and
	// computes the join.
	r := pequod.ScanRange("t", "ann")
	kvs, err := cluster.Scan(ctx, r.Lo, r.Hi, 0)
	must(err)
	fmt.Println("ann's timeline (computed from two home servers):")
	for _, kv := range kvs {
		fmt.Printf("  %s -> %q\n", kv.Key, kv.Value)
	}

	// A new post at its home flows to the materialized timeline through
	// the subscription — asynchronously (eventual consistency, §2.4).
	// Quiesce settles the propagation deterministically.
	must(cluster.Put(ctx, "p|zed|200", "zed again"))
	must(cluster.Quiesce(ctx))
	if v, found, err := cluster.Get(ctx, "t|ann|200|zed"); err == nil && found {
		fmt.Printf("subscription delivered: t|ann|200|zed -> %q\n", v)
	} else {
		log.Fatalf("timeline not fresh after quiesce: %q %v %v", v, found, err)
	}
}

func mustServer(cfg pequod.ServerConfig) *pequod.Server {
	s, err := pequod.NewServer(cfg)
	if err != nil {
		log.Fatal(err)
	}
	return s
}

func mustStart(s *pequod.Server) string {
	addr, err := s.Start()
	if err != nil {
		log.Fatal(err)
	}
	return addr
}

func must(err error) {
	if err != nil {
		log.Fatal(err)
	}
}
