// Newp example: the paper's Hacker-News-like application (§2.3, Fig 1),
// showing interleaved cache joins assembling an article page — article
// text, vote count, comments, and per-commenter karma — in one scan.
//
// Run: go run ./examples/newp
package main

import (
	"context"
	"fmt"
	"log"

	"pequod"
)

const joins = `
  karma|<author> = count vote|<author>|<id>|<voter>;
  rank|<author>|<id> = count vote|<author>|<id>|<voter>;
  page|<author>|<id>|a = copy article|<author>|<id>;
  page|<author>|<id>|r = copy rank|<author>|<id>;
  page|<author>|<id>|c|<cid>|<commenter> = copy comment|<author>|<id>|<cid>|<commenter>;
  page|<author>|<id>|k|<cid>|<commenter> = check comment|<author>|<id>|<cid>|<commenter> copy karma|<commenter>
`

func main() {
	ctx := context.Background()
	cache, err := pequod.NewCache(pequod.Options{})
	if err != nil {
		log.Fatal(err)
	}
	defer cache.Close()
	if err := cache.Install(ctx, joins); err != nil {
		log.Fatal(err)
	}

	// bob posts an article; liz and pat comment; votes arrive — including
	// votes on liz's own article, which give liz karma.
	must(cache.PutBatch(ctx, []pequod.KV{
		{Key: "article|bob|101", Value: "A deep dive into cache joins"},
		{Key: "comment|bob|101|c1|liz", Value: "great article!"},
		{Key: "comment|bob|101|c2|pat", Value: "needs more benchmarks"},
		{Key: "vote|bob|101|u1", Value: "1"},
		{Key: "vote|bob|101|u2", Value: "1"},
		{Key: "article|liz|x1", Value: "liz's own piece"},
		{Key: "vote|liz|x1|u3", Value: "1"},
	}))

	renderPage(ctx, cache, "bob", "101")

	// A new vote on liz's article cascades: vote -> karma|liz ->
	// page|bob|101|k|c1|liz (join-on-join, two hops, §2.3).
	fmt.Println("\nanother vote for liz's article lands...")
	must(cache.Put(ctx, "vote|liz|x1|u4", "1"))
	renderPage(ctx, cache, "bob", "101")
}

func renderPage(ctx context.Context, cache *pequod.Cache, author, id string) {
	// "Newp can issue one scan on [page|bob|101, page|bob|101|+) to
	// retrieve all of the disparate data needed to render an article
	// page" (§2.3).
	lo := pequod.JoinKey("page", author, id) + "|"
	kvs, err := cache.Scan(ctx, lo, pequod.PrefixEnd(lo), 0)
	must(err)
	fmt.Printf("— page %s/%s (%d items in one scan) —\n", author, id, len(kvs))
	for _, kv := range kvs {
		comps := pequod.SplitKey(kv.Key)
		switch comps[3] {
		case "a":
			fmt.Printf("  article: %s\n", kv.Value)
		case "r":
			fmt.Printf("  votes:   %s\n", kv.Value)
		case "c":
			fmt.Printf("  comment by %s: %s\n", comps[5], kv.Value)
		case "k":
			fmt.Printf("  %s's karma: %s\n", comps[5], kv.Value)
		}
	}
}

func must(err error) {
	if err != nil {
		log.Fatal(err)
	}
}
