// Twip example: a networked Pequod server running the paper's
// microblogging application (§2.1–§2.3), including celebrity joins.
//
// Run: go run ./examples/twip
package main

import (
	"fmt"
	"log"

	"pequod"
)

func main() {
	// Celebrity join set (§2.3): normal posts flow through the eager
	// timeline join; celebrity posts are stored under cp|, collected
	// time-primary in ct|, and joined at read time (pull) to save the
	// memory of copying them into millions of timelines.
	srv, err := pequod.NewServer(pequod.ServerConfig{
		Name: "twip",
		Joins: `
		  ct|<time>|<poster> = copy cp|<poster>|<time>;
		  t|<user>|<time>|<poster> = check s|<user>|<poster> copy p|<poster>|<time>;
		  t|<user>|<time>|<poster> = pull copy ct|<time>|<poster> check s|<user>|<poster>
		`,
		SubtableDepths: map[string]int{"t": 2}, // §4.1: timelines are natural boundaries
	})
	if err != nil {
		log.Fatal(err)
	}
	addr, err := srv.Start()
	if err != nil {
		log.Fatal(err)
	}
	defer srv.Close()
	fmt.Println("twip server on", addr)

	c, err := pequod.Dial(addr)
	if err != nil {
		log.Fatal(err)
	}
	defer c.Close()

	// ann follows bob (a regular user) and celeb (a celebrity).
	must(c.Put("s|ann|bob", "1"))
	must(c.Put("s|ann|celeb", "1"))
	// bea follows only bob.
	must(c.Put("s|bea|bob", "1"))

	must(c.Put("p|bob|0100", "bob: regular tweet"))
	must(c.Put("cp|celeb|0150", "celeb: to my millions of followers"))
	must(c.Put("p|bob|0200", "bob: another one"))

	for _, user := range []string{"ann", "bea"} {
		kvs, err := c.Scan("t|"+user+"|", pequod.PrefixEnd("t|"+user+"|"), 0)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%s's timeline:\n", user)
		for _, kv := range kvs {
			fmt.Printf("  %s -> %q\n", kv.Key, kv.Value)
		}
	}

	// The celebrity tweet reached ann through the pull join without ever
	// being materialized; server stats show the difference.
	st, err := c.Stat()
	must(err)
	fmt.Println("server stats:", st)
}

func must(err error) {
	if err != nil {
		log.Fatal(err)
	}
}
