// Twip example: a networked Pequod server running the paper's
// microblogging application (§2.1–§2.3), including celebrity joins.
//
// Run: go run ./examples/twip
package main

import (
	"context"
	"fmt"
	"log"
	"time"

	"pequod"
)

func main() {
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()

	// Celebrity join set (§2.3): normal posts flow through the eager
	// timeline join; celebrity posts are stored under cp|, collected
	// time-primary in ct|, and joined at read time (pull) to save the
	// memory of copying them into millions of timelines.
	srv, err := pequod.NewServer(pequod.ServerConfig{
		Name: "twip",
		Joins: `
		  ct|<time>|<poster> = copy cp|<poster>|<time>;
		  t|<user>|<time>|<poster> = check s|<user>|<poster> copy p|<poster>|<time>;
		  t|<user>|<time>|<poster> = pull copy ct|<time>|<poster> check s|<user>|<poster>
		`,
		SubtableDepths: map[string]int{"t": 2}, // §4.1: timelines are natural boundaries
	})
	if err != nil {
		log.Fatal(err)
	}
	addr, err := srv.Start()
	if err != nil {
		log.Fatal(err)
	}
	defer srv.Close()
	fmt.Println("twip server on", addr)

	c, err := pequod.DialContext(ctx, addr)
	if err != nil {
		log.Fatal(err)
	}
	defer c.Close()

	// ann follows bob (a regular user) and celeb (a celebrity); bea
	// follows only bob. One pipelined batch: every put is sent before
	// any reply is awaited.
	must(c.PutBatch(ctx, []pequod.KV{
		{Key: "s|ann|bob", Value: "1"},
		{Key: "s|ann|celeb", Value: "1"},
		{Key: "s|bea|bob", Value: "1"},
		{Key: "p|bob|0100", Value: "bob: regular tweet"},
		{Key: "cp|celeb|0150", Value: "celeb: to my millions of followers"},
		{Key: "p|bob|0200", Value: "bob: another one"},
	}))

	// Both timelines in one pipelined batch of range scans.
	timelines, err := c.ScanBatch(ctx, []pequod.Range{
		pequod.ScanRange("t", "ann"),
		pequod.ScanRange("t", "bea"),
	}, 0)
	must(err)
	for i, user := range []string{"ann", "bea"} {
		fmt.Printf("%s's timeline:\n", user)
		for _, kv := range timelines[i] {
			fmt.Printf("  %s -> %q\n", kv.Key, kv.Value)
		}
	}

	// The celebrity tweet reached ann through the pull join without ever
	// being materialized; server stats show the difference.
	st, err := c.Stat(ctx)
	must(err)
	fmt.Println("server stats:", st)
}

func must(err error) {
	if err != nil {
		log.Fatal(err)
	}
}
